//! Tiny std-only data parallelism for the workspace's hot loops.
//!
//! The build environment has no crates.io access, so `rayon` is not an
//! option; this crate provides the chunked parallel-map shapes the
//! workspace actually needs, in two execution flavours:
//!
//! * [`parallel_map`] — map a function over a shared slice, collecting
//!   outputs in input order (used by the experiment sweeps, where each item
//!   is a whole policy evaluation);
//! * [`map_chunks_mut`] — hand each worker a contiguous mutable chunk of a
//!   slice plus the chunk's start offset, collecting one output per chunk in
//!   chunk order (used by the Monte Carlo arrival sampler, where each chunk
//!   is a block of replication paths with per-path RNG state);
//! * [`WorkerPool`] — the same two shapes executed on a **persistent** set
//!   of worker threads that park between calls, for serving loops that fan
//!   out every round and cannot afford a spawn/join per round (the online
//!   fleet's drain + plan pass and its checkpoint sharding).
//!
//! All helpers run inline (no threads involved) when a single worker would
//! do, so callers can use them unconditionally. None changes results
//! versus a serial run: **chunking depends only on the caller's worker
//! budget and the item count — never on how many OS threads actually
//! execute the chunks** — outputs are ordered by input position, and
//! callers that need randomness are expected to derive *per-item*
//! deterministic RNG streams. That makes the outcome independent of both
//! the worker count and the execution flavour (scoped spawn vs pool) — the
//! determinism contract the fixed-seed figure binaries and the online
//! fleet rely on.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::cell::Cell;
use std::collections::VecDeque;
use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};

thread_local! {
    /// Whether the current thread is one of this crate's workers. Nested
    /// fan-outs would oversubscribe the machine (each of c outer workers
    /// spawning c inner ones), so [`available_threads`] reports 1 inside a
    /// worker and nested calls run inline.
    static IN_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// Number of worker threads worth spawning from the current thread:
/// `std::thread::available_parallelism` (1 when unknown), or 1 when already
/// running inside a [`parallel_map`]/[`map_chunks_mut`] worker — the cores
/// are busy with the outer fan-out.
pub fn available_threads() -> usize {
    if IN_WORKER.with(Cell::get) {
        return 1;
    }
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Apply `f` to every element of `items` across at most `max_threads`
/// scoped worker threads, returning the outputs in input order.
///
/// The slice is split into one contiguous chunk per worker. With
/// `max_threads <= 1`, fewer than two items, or when already running inside
/// one of this crate's workers (nested fan-out), the map runs inline on the
/// calling thread. A panic in `f` propagates to the caller.
pub fn parallel_map<T, U, F>(items: &[T], max_threads: usize, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    let workers = worker_budget(max_threads, items.len());
    if workers == 1 {
        return items.iter().map(&f).collect();
    }
    let chunk_len = items.len().div_ceil(workers);
    let f = &f;
    let mut out = Vec::with_capacity(items.len());
    std::thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks(chunk_len)
            .map(|chunk| {
                scope.spawn(move || {
                    IN_WORKER.with(|flag| flag.set(true));
                    chunk.iter().map(f).collect::<Vec<U>>()
                })
            })
            .collect();
        for handle in handles {
            match handle.join() {
                Ok(part) => out.extend(part),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });
    out
}

/// Split `items` into at most `max_threads` contiguous chunks and apply
/// `f(chunk_start, chunk)` to each on its own scoped thread, returning the
/// per-chunk outputs in chunk order.
///
/// `chunk_start` is the offset of the chunk's first element within `items`,
/// so workers can address sibling storage (e.g. scatter rows into a shared
/// matrix once the map returns). With `max_threads <= 1`, fewer than two
/// items, or inside one of this crate's workers (nested fan-out), the
/// single chunk is processed inline. A panic in `f` propagates to the
/// caller.
pub fn map_chunks_mut<T, U, F>(items: &mut [T], max_threads: usize, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(usize, &mut [T]) -> U + Sync,
{
    let workers = worker_budget(max_threads, items.len());
    if workers == 1 {
        return vec![f(0, items)];
    }
    let chunk_len = items.len().div_ceil(workers);
    let f = &f;
    let mut out = Vec::with_capacity(workers);
    std::thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks_mut(chunk_len)
            .enumerate()
            .map(|(i, chunk)| {
                scope.spawn(move || {
                    IN_WORKER.with(|flag| flag.set(true));
                    f(i * chunk_len, chunk)
                })
            })
            .collect();
        for handle in handles {
            match handle.join() {
                Ok(part) => out.push(part),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });
    out
}

/// Effective worker count for a fan-out over `items` elements: the caller's
/// budget, bounded by the item count, forced to 1 inside a nested worker.
fn worker_budget(max_threads: usize, items: usize) -> usize {
    if IN_WORKER.with(Cell::get) {
        return 1;
    }
    max_threads.min(items).max(1)
}

/// A lifetime-erased job queued on the pool. Soundness: every batch
/// submitter blocks until all of its jobs have completed before returning,
/// so the borrows a job captures always outlive its execution.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// State shared between the pool handle and its worker threads.
struct PoolShared {
    queue: Mutex<PoolQueue>,
    /// Signalled when a job is queued or shutdown is requested.
    job_ready: Condvar,
}

struct PoolQueue {
    jobs: VecDeque<Job>,
    shutdown: bool,
}

/// Completion tracking for one submitted batch of jobs.
struct BatchSync {
    state: Mutex<BatchState>,
    done: Condvar,
}

struct BatchState {
    remaining: usize,
    /// The first panicking job's payload, kept verbatim so the submitting
    /// call re-raises the *original* panic (message included) instead of a
    /// generic marker — supervisors above the pool match on the payload.
    panic: Option<Box<dyn std::any::Any + Send>>,
}

impl BatchSync {
    fn new(jobs: usize) -> Self {
        Self {
            state: Mutex::new(BatchState {
                remaining: jobs,
                panic: None,
            }),
            done: Condvar::new(),
        }
    }

    fn complete(&self, panicked: Option<Box<dyn std::any::Any + Send>>) {
        let mut state = self.state.lock().expect("pool batch lock poisoned");
        state.remaining -= 1;
        if let Some(payload) = panicked {
            state.panic.get_or_insert(payload);
        }
        if state.remaining == 0 {
            self.done.notify_all();
        }
    }

    /// Block until every job of the batch has run; then propagate the
    /// first panic (original payload) to the submitter.
    fn wait(&self) {
        let mut state = self.state.lock().expect("pool batch lock poisoned");
        while state.remaining > 0 {
            state = self.done.wait(state).expect("pool batch lock poisoned");
        }
        if let Some(payload) = state.panic.take() {
            drop(state);
            std::panic::resume_unwind(payload);
        }
    }
}

/// One-shot output slot written by exactly one pool job and read by the
/// submitter after the batch barrier; the barrier's mutex/condvar pair
/// provides the happens-before edge.
struct Slot<U>(std::cell::UnsafeCell<Option<U>>);

// SAFETY: each slot is written by exactly one job and only read after the
// batch barrier has observed that job's completion.
unsafe impl<U: Send> Sync for Slot<U> {}

impl<U> Slot<U> {
    fn new() -> Self {
        Slot(std::cell::UnsafeCell::new(None))
    }

    /// Store the job's output. Called exactly once, from the one job that
    /// owns this slot.
    fn put(&self, value: U) {
        // SAFETY: single writer (see type docs); no concurrent reader until
        // the batch barrier passes.
        unsafe { *self.0.get() = Some(value) };
    }

    fn take(self) -> U {
        self.0
            .into_inner()
            .expect("pool job completed without writing its slot")
    }
}

/// A persistent pool of worker threads for round-based fan-outs.
///
/// [`parallel_map`]/[`map_chunks_mut`] spawn and join scoped threads on
/// every call — fine for one-shot sweeps, but a serving loop that fans out
/// every round pays the spawn/teardown on its critical path each time. A
/// `WorkerPool` keeps its threads alive and **parked** (condvar wait)
/// between calls; a round submits its chunk jobs, the workers wake, run
/// them, and park again.
///
/// Guarantees, mirroring the free functions exactly:
///
/// * **Bit-identical outputs.** [`WorkerPool::map_chunks_mut`] and
///   [`WorkerPool::parallel_map`] use the *same chunking* as the free
///   functions for a given `(worker budget, item count)` — the number of
///   pool threads only changes which OS thread runs a chunk, never what the
///   chunks are or the order outputs are collected in.
/// * **Inline degradation.** A budget of 1 (or nested use inside any of
///   this crate's workers) runs inline on the caller, exactly like the free
///   functions; a pool built with `threads <= 1` never spawns at all.
/// * **No oversubscription.** Pool threads mark themselves as workers, so
///   nested fan-outs inside a job collapse to inline execution.
/// * **Panic propagation.** A panicking job poisons only its batch: the
///   submitting call re-raises the first job's *original* panic payload
///   after all of the batch's jobs have finished, and the pool stays
///   usable. Supervisors above the pool (the fleet's round boundary) rely
///   on the payload surviving verbatim to report what actually died.
///
/// Threads are spawned lazily on first use and joined on [`Drop`]. The pool
/// is `Sync`: submissions from multiple threads are safe (each batch tracks
/// its own completion), though the intended shape is one serving loop per
/// pool.
pub struct WorkerPool {
    shared: Arc<PoolShared>,
    /// Desired thread count; threads are spawned lazily up to this target.
    target: AtomicUsize,
    handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("target_threads", &self.target.load(Ordering::Relaxed))
            .field(
                "spawned_threads",
                &self.handles.lock().map(|h| h.len()).unwrap_or(0),
            )
            .finish()
    }
}

impl WorkerPool {
    /// Create a pool that will run jobs on up to `threads` persistent
    /// worker threads (spawned lazily on first use). `threads <= 1` makes
    /// every call run inline on the caller — no threads are ever spawned.
    pub fn new(threads: usize) -> Self {
        Self {
            shared: Arc::new(PoolShared {
                queue: Mutex::new(PoolQueue {
                    jobs: VecDeque::new(),
                    shutdown: false,
                }),
                job_ready: Condvar::new(),
            }),
            target: AtomicUsize::new(threads),
            handles: Mutex::new(Vec::new()),
        }
    }

    /// A pool sized to [`available_threads`].
    pub fn with_available_threads() -> Self {
        Self::new(available_threads())
    }

    /// The pool's thread target (the cap on concurrently executing jobs).
    pub fn threads(&self) -> usize {
        self.target.load(Ordering::Relaxed)
    }

    /// Raise the thread target to `threads` (never shrinks — parked
    /// threads are cheap, and shrinking mid-flight would complicate the
    /// queue for no caller that exists). Extra threads spawn lazily on the
    /// next submission.
    pub fn ensure_threads(&self, threads: usize) {
        self.target.fetch_max(threads, Ordering::Relaxed);
    }

    /// Spawn workers up to the current target; returns how many exist.
    fn ensure_spawned(&self) -> usize {
        let target = self.target.load(Ordering::Relaxed);
        if target <= 1 {
            return 0;
        }
        let mut handles = self.handles.lock().expect("pool handle lock poisoned");
        while handles.len() < target {
            let shared = Arc::clone(&self.shared);
            let index = handles.len();
            let handle = std::thread::Builder::new()
                .name(format!("robustscaler-pool-{index}"))
                .spawn(move || Self::worker_loop(&shared))
                .expect("failed to spawn pool worker thread");
            handles.push(handle);
        }
        handles.len()
    }

    fn worker_loop(shared: &PoolShared) {
        // Pool threads are workers for their whole life: nested fan-outs
        // inside a job must run inline rather than oversubscribe.
        IN_WORKER.with(|flag| flag.set(true));
        loop {
            let job = {
                let mut queue = shared.queue.lock().expect("pool queue lock poisoned");
                loop {
                    if let Some(job) = queue.jobs.pop_front() {
                        break job;
                    }
                    if queue.shutdown {
                        return;
                    }
                    queue = shared
                        .job_ready
                        .wait(queue)
                        .expect("pool queue lock poisoned");
                }
            };
            // The job's own wrapper (see `run_batch`) catches panics and
            // reports completion, so the loop body cannot unwind.
            job();
        }
    }

    /// Run `jobs` to completion, on pool threads when any exist, inline
    /// otherwise. Blocks until every job has finished — this barrier is
    /// what makes the lifetime erasure of the jobs' borrows sound.
    fn run_batch<'env>(&self, jobs: Vec<Box<dyn FnOnce() + Send + 'env>>) {
        if jobs.is_empty() {
            return;
        }
        if self.ensure_spawned() == 0 {
            // Inline flavour: same jobs, same order, caller's thread.
            for job in jobs {
                job();
            }
            return;
        }
        let batch = Arc::new(BatchSync::new(jobs.len()));
        {
            let mut queue = self.shared.queue.lock().expect("pool queue lock poisoned");
            for job in jobs {
                let batch = Arc::clone(&batch);
                let wrapped: Box<dyn FnOnce() + Send + 'env> = Box::new(move || {
                    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(job)).err();
                    batch.complete(outcome);
                });
                // SAFETY: `wait()` below blocks until every job of this
                // batch has completed, so all borrows captured in `wrapped`
                // (lifetime `'env`) strictly outlive its execution; the
                // transmute only erases that lifetime, layout is identical.
                let wrapped: Job =
                    unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + 'env>, Job>(wrapped) };
                queue.jobs.push_back(wrapped);
            }
            self.shared.job_ready.notify_all();
        }
        batch.wait();
    }

    /// [`map_chunks_mut`] on the pool's persistent threads: split `items`
    /// into at most `max_workers` contiguous chunks, apply
    /// `f(chunk_start, chunk)` to each, and return the per-chunk outputs in
    /// chunk order. Chunking — and therefore output — is bit-identical to
    /// the free function for the same budget and items.
    pub fn map_chunks_mut<T, U, F>(&self, items: &mut [T], max_workers: usize, f: F) -> Vec<U>
    where
        T: Send,
        U: Send,
        F: Fn(usize, &mut [T]) -> U + Sync,
    {
        let workers = worker_budget(max_workers, items.len());
        if workers == 1 {
            return vec![f(0, items)];
        }
        let chunk_len = items.len().div_ceil(workers);
        let chunk_count = items.len().div_ceil(chunk_len);
        let slots: Vec<Slot<U>> = (0..chunk_count).map(|_| Slot::new()).collect();
        let f = &f;
        let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = items
            .chunks_mut(chunk_len)
            .zip(slots.iter())
            .enumerate()
            .map(|(i, (chunk, slot))| {
                Box::new(move || slot.put(f(i * chunk_len, chunk))) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        self.run_batch(jobs);
        slots.into_iter().map(Slot::take).collect()
    }

    /// [`parallel_map`] on the pool's persistent threads: apply `f` to
    /// every element of `items` across at most `max_workers` contiguous
    /// chunks, returning the outputs in input order. Bit-identical to the
    /// free function for the same budget and items.
    pub fn parallel_map<T, U, F>(&self, items: &[T], max_workers: usize, f: F) -> Vec<U>
    where
        T: Sync,
        U: Send,
        F: Fn(&T) -> U + Sync,
    {
        let workers = worker_budget(max_workers, items.len());
        if workers == 1 {
            return items.iter().map(&f).collect();
        }
        let chunk_len = items.len().div_ceil(workers);
        let chunk_count = items.len().div_ceil(chunk_len);
        let slots: Vec<Slot<Vec<U>>> = (0..chunk_count).map(|_| Slot::new()).collect();
        let f = &f;
        let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = items
            .chunks(chunk_len)
            .zip(slots.iter())
            .map(|(chunk, slot)| {
                Box::new(move || slot.put(chunk.iter().map(f).collect()))
                    as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        self.run_batch(jobs);
        let mut out = Vec::with_capacity(items.len());
        for slot in slots {
            out.extend(slot.take());
        }
        out
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut queue = self.shared.queue.lock().expect("pool queue lock poisoned");
            queue.shutdown = true;
            self.shared.job_ready.notify_all();
        }
        let handles = std::mem::take(&mut *self.handles.lock().expect("pool handle lock poisoned"));
        for handle in handles {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reports_at_least_one_thread() {
        assert!(available_threads() >= 1);
    }

    #[test]
    fn parallel_map_matches_serial_in_order() {
        let items: Vec<u64> = (0..1_000).collect();
        let serial: Vec<u64> = items.iter().map(|&x| x * x + 1).collect();
        for threads in [1, 2, 3, 7, 16, 1_000, 5_000] {
            let parallel = parallel_map(&items, threads, |&x| x * x + 1);
            assert_eq!(parallel, serial, "threads = {threads}");
        }
    }

    #[test]
    fn parallel_map_handles_empty_and_single_inputs() {
        let empty: Vec<i32> = Vec::new();
        assert!(parallel_map(&empty, 4, |&x| x).is_empty());
        assert_eq!(parallel_map(&[42], 4, |&x| x + 1), vec![43]);
    }

    #[test]
    fn map_chunks_mut_mutates_every_element_once() {
        for threads in [1, 2, 5, 64] {
            let mut items: Vec<usize> = vec![0; 257];
            let chunk_info = map_chunks_mut(&mut items, threads, |start, chunk| {
                for (i, v) in chunk.iter_mut().enumerate() {
                    *v = start + i;
                }
                (start, chunk.len())
            });
            // Every element holds its own index: each was visited exactly
            // once with the correct offset.
            assert!(items.iter().enumerate().all(|(i, &v)| v == i));
            // Chunks are contiguous, ordered and cover the slice.
            let mut expected_start = 0;
            for (start, len) in chunk_info {
                assert_eq!(start, expected_start);
                expected_start += len;
            }
            assert_eq!(expected_start, items.len());
        }
    }

    #[test]
    fn nested_fan_outs_run_inline_in_workers() {
        // Inside a worker, the thread budget collapses to 1 so a nested
        // parallel_map cannot oversubscribe the machine — and results are
        // unchanged either way.
        let items: Vec<u32> = (0..64).collect();
        let nested = parallel_map(&items, 8, |&x| {
            assert_eq!(available_threads(), 1);
            let inner: Vec<u32> = (0..4).collect();
            parallel_map(&inner, 8, move |&y| x * 10 + y)
        });
        for (x, inner) in nested.iter().enumerate() {
            let expected: Vec<u32> = (0..4).map(|y| x as u32 * 10 + y).collect();
            assert_eq!(inner, &expected);
        }
        // Back on the caller thread the full budget is visible again.
        assert!(available_threads() >= 1);
    }

    #[test]
    fn map_chunks_mut_runs_inline_on_one_worker() {
        let mut items = vec![1.0_f64; 8];
        let sums = map_chunks_mut(&mut items, 1, |start, chunk| {
            assert_eq!(start, 0);
            chunk.iter().sum::<f64>()
        });
        assert_eq!(sums, vec![8.0]);
    }

    #[test]
    fn pool_map_matches_free_functions_for_every_budget() {
        let items: Vec<u64> = (0..1_003).collect();
        let pool = WorkerPool::new(4);
        for budget in [1usize, 2, 3, 7, 16, 5_000] {
            let expected = parallel_map(&items, budget, |&x| x * 3 + 1);
            let pooled = pool.parallel_map(&items, budget, |&x| x * 3 + 1);
            assert_eq!(pooled, expected, "budget = {budget}");

            let mut a: Vec<usize> = vec![0; 257];
            let mut b: Vec<usize> = vec![0; 257];
            let fill = |start: usize, chunk: &mut [usize]| {
                for (i, v) in chunk.iter_mut().enumerate() {
                    *v = start + i;
                }
                chunk.len()
            };
            let expected = map_chunks_mut(&mut a, budget, fill);
            let pooled = pool.map_chunks_mut(&mut b, budget, fill);
            assert_eq!(a, b, "budget = {budget}");
            assert_eq!(pooled, expected, "budget = {budget}");
        }
    }

    #[test]
    fn pool_reuses_threads_across_rounds_and_mutates_in_place() {
        let pool = WorkerPool::new(3);
        let mut items: Vec<u64> = (0..100).collect();
        for round in 0..50u64 {
            pool.map_chunks_mut(&mut items, 3, |_, chunk| {
                for v in chunk.iter_mut() {
                    *v += 1;
                }
            });
            assert!(items
                .iter()
                .enumerate()
                .all(|(i, &v)| v == i as u64 + round + 1));
        }
    }

    #[test]
    fn single_thread_pool_never_spawns_and_runs_inline() {
        let pool = WorkerPool::new(1);
        let out = pool.parallel_map(&[1, 2, 3], 8, |&x| x * 2);
        assert_eq!(out, vec![2, 4, 6]);
        assert_eq!(pool.ensure_spawned(), 0);
    }

    #[test]
    fn pool_nested_fan_outs_run_inline() {
        let pool = WorkerPool::new(2);
        let items: Vec<u32> = (0..16).collect();
        let nested = pool.parallel_map(&items, 2, |&x| {
            assert_eq!(available_threads(), 1);
            let inner: Vec<u32> = (0..3).collect();
            parallel_map(&inner, 4, move |&y| x * 10 + y)
        });
        for (x, inner) in nested.iter().enumerate() {
            let expected: Vec<u32> = (0..3).map(|y| x as u32 * 10 + y).collect();
            assert_eq!(inner, &expected);
        }
    }

    #[test]
    fn pool_propagates_job_panics_and_stays_usable() {
        let pool = WorkerPool::new(2);
        let items: Vec<u32> = (0..8).collect();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.parallel_map(&items, 4, |&x| {
                assert!(x != 5, "boom");
                x
            })
        }));
        // The original payload survives the pool boundary verbatim.
        let payload = result.unwrap_err();
        let message = payload
            .downcast_ref::<&str>()
            .copied()
            .or_else(|| payload.downcast_ref::<String>().map(String::as_str))
            .expect("panic payload is a string");
        assert!(message.contains("boom"), "{message}");
        // The pool survives a panicked batch.
        let out = pool.parallel_map(&items, 4, |&x| x + 1);
        assert_eq!(out, (1..9).collect::<Vec<u32>>());
    }

    #[test]
    fn ensure_threads_grows_but_never_shrinks() {
        let pool = WorkerPool::new(2);
        pool.ensure_threads(4);
        assert_eq!(pool.threads(), 4);
        pool.ensure_threads(1);
        assert_eq!(pool.threads(), 4);
    }
}
