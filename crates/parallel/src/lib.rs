//! Tiny std-only data parallelism for the workspace's hot loops.
//!
//! The build environment has no crates.io access, so `rayon` is not an
//! option; this crate provides the two chunked parallel-map shapes the
//! workspace actually needs, built directly on [`std::thread::scope`]:
//!
//! * [`parallel_map`] — map a function over a shared slice, collecting
//!   outputs in input order (used by the experiment sweeps, where each item
//!   is a whole policy evaluation);
//! * [`map_chunks_mut`] — hand each worker a contiguous mutable chunk of a
//!   slice plus the chunk's start offset, collecting one output per chunk in
//!   chunk order (used by the Monte Carlo arrival sampler, where each chunk
//!   is a block of replication paths with per-path RNG state).
//!
//! Both helpers run inline (no threads spawned) when a single worker would
//! do, so callers can use them unconditionally. Neither changes results
//! versus a serial run: outputs are ordered by input position, and callers
//! that need randomness are expected to derive *per-item* deterministic RNG
//! streams, which makes the outcome independent of the worker count — the
//! determinism contract the fixed-seed figure binaries rely on.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::cell::Cell;
use std::num::NonZeroUsize;

thread_local! {
    /// Whether the current thread is one of this crate's workers. Nested
    /// fan-outs would oversubscribe the machine (each of c outer workers
    /// spawning c inner ones), so [`available_threads`] reports 1 inside a
    /// worker and nested calls run inline.
    static IN_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// Number of worker threads worth spawning from the current thread:
/// `std::thread::available_parallelism` (1 when unknown), or 1 when already
/// running inside a [`parallel_map`]/[`map_chunks_mut`] worker — the cores
/// are busy with the outer fan-out.
pub fn available_threads() -> usize {
    if IN_WORKER.with(Cell::get) {
        return 1;
    }
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Apply `f` to every element of `items` across at most `max_threads`
/// scoped worker threads, returning the outputs in input order.
///
/// The slice is split into one contiguous chunk per worker. With
/// `max_threads <= 1`, fewer than two items, or when already running inside
/// one of this crate's workers (nested fan-out), the map runs inline on the
/// calling thread. A panic in `f` propagates to the caller.
pub fn parallel_map<T, U, F>(items: &[T], max_threads: usize, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    let workers = worker_budget(max_threads, items.len());
    if workers == 1 {
        return items.iter().map(&f).collect();
    }
    let chunk_len = items.len().div_ceil(workers);
    let f = &f;
    let mut out = Vec::with_capacity(items.len());
    std::thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks(chunk_len)
            .map(|chunk| {
                scope.spawn(move || {
                    IN_WORKER.with(|flag| flag.set(true));
                    chunk.iter().map(f).collect::<Vec<U>>()
                })
            })
            .collect();
        for handle in handles {
            out.extend(handle.join().expect("parallel_map worker panicked"));
        }
    });
    out
}

/// Split `items` into at most `max_threads` contiguous chunks and apply
/// `f(chunk_start, chunk)` to each on its own scoped thread, returning the
/// per-chunk outputs in chunk order.
///
/// `chunk_start` is the offset of the chunk's first element within `items`,
/// so workers can address sibling storage (e.g. scatter rows into a shared
/// matrix once the map returns). With `max_threads <= 1`, fewer than two
/// items, or inside one of this crate's workers (nested fan-out), the
/// single chunk is processed inline. A panic in `f` propagates to the
/// caller.
pub fn map_chunks_mut<T, U, F>(items: &mut [T], max_threads: usize, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(usize, &mut [T]) -> U + Sync,
{
    let workers = worker_budget(max_threads, items.len());
    if workers == 1 {
        return vec![f(0, items)];
    }
    let chunk_len = items.len().div_ceil(workers);
    let f = &f;
    let mut out = Vec::with_capacity(workers);
    std::thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks_mut(chunk_len)
            .enumerate()
            .map(|(i, chunk)| {
                scope.spawn(move || {
                    IN_WORKER.with(|flag| flag.set(true));
                    f(i * chunk_len, chunk)
                })
            })
            .collect();
        for handle in handles {
            out.push(handle.join().expect("map_chunks_mut worker panicked"));
        }
    });
    out
}

/// Effective worker count for a fan-out over `items` elements: the caller's
/// budget, bounded by the item count, forced to 1 inside a nested worker.
fn worker_budget(max_threads: usize, items: usize) -> usize {
    if IN_WORKER.with(Cell::get) {
        return 1;
    }
    max_threads.min(items).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reports_at_least_one_thread() {
        assert!(available_threads() >= 1);
    }

    #[test]
    fn parallel_map_matches_serial_in_order() {
        let items: Vec<u64> = (0..1_000).collect();
        let serial: Vec<u64> = items.iter().map(|&x| x * x + 1).collect();
        for threads in [1, 2, 3, 7, 16, 1_000, 5_000] {
            let parallel = parallel_map(&items, threads, |&x| x * x + 1);
            assert_eq!(parallel, serial, "threads = {threads}");
        }
    }

    #[test]
    fn parallel_map_handles_empty_and_single_inputs() {
        let empty: Vec<i32> = Vec::new();
        assert!(parallel_map(&empty, 4, |&x| x).is_empty());
        assert_eq!(parallel_map(&[42], 4, |&x| x + 1), vec![43]);
    }

    #[test]
    fn map_chunks_mut_mutates_every_element_once() {
        for threads in [1, 2, 5, 64] {
            let mut items: Vec<usize> = vec![0; 257];
            let chunk_info = map_chunks_mut(&mut items, threads, |start, chunk| {
                for (i, v) in chunk.iter_mut().enumerate() {
                    *v = start + i;
                }
                (start, chunk.len())
            });
            // Every element holds its own index: each was visited exactly
            // once with the correct offset.
            assert!(items.iter().enumerate().all(|(i, &v)| v == i));
            // Chunks are contiguous, ordered and cover the slice.
            let mut expected_start = 0;
            for (start, len) in chunk_info {
                assert_eq!(start, expected_start);
                expected_start += len;
            }
            assert_eq!(expected_start, items.len());
        }
    }

    #[test]
    fn nested_fan_outs_run_inline_in_workers() {
        // Inside a worker, the thread budget collapses to 1 so a nested
        // parallel_map cannot oversubscribe the machine — and results are
        // unchanged either way.
        let items: Vec<u32> = (0..64).collect();
        let nested = parallel_map(&items, 8, |&x| {
            assert_eq!(available_threads(), 1);
            let inner: Vec<u32> = (0..4).collect();
            parallel_map(&inner, 8, move |&y| x * 10 + y)
        });
        for (x, inner) in nested.iter().enumerate() {
            let expected: Vec<u32> = (0..4).map(|y| x as u32 * 10 + y).collect();
            assert_eq!(inner, &expected);
        }
        // Back on the caller thread the full budget is visible again.
        assert!(available_threads() >= 1);
    }

    #[test]
    fn map_chunks_mut_runs_inline_on_one_worker() {
        let mut items = vec![1.0_f64; 8];
        let sums = map_chunks_mut(&mut items, 1, |start, chunk| {
            assert_eq!(start, 0);
            chunk.iter().sum::<f64>()
        });
        assert_eq!(sums, vec![8.0]);
    }
}
