//! Workload traces: one record per query.

use crate::error::SimulatorError;
use serde::{Deserialize, Serialize};

/// One query of the workload.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Query {
    /// Arrival time in seconds from the trace origin.
    pub arrival: f64,
    /// Processing (service) time in seconds.
    pub processing: f64,
}

/// A workload trace: queries sorted by arrival time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    name: String,
    queries: Vec<Query>,
}

impl Trace {
    /// Build a trace from queries; they are sorted by arrival time and
    /// validated (finite, non-negative processing times).
    pub fn new(name: impl Into<String>, mut queries: Vec<Query>) -> Result<Self, SimulatorError> {
        if queries.is_empty() {
            return Err(SimulatorError::InvalidTrace("trace has no queries"));
        }
        if queries
            .iter()
            .any(|q| !q.arrival.is_finite() || !q.processing.is_finite() || q.processing < 0.0)
        {
            return Err(SimulatorError::InvalidTrace(
                "arrival/processing times must be finite and processing >= 0",
            ));
        }
        queries.sort_by(|a, b| a.arrival.partial_cmp(&b.arrival).expect("finite arrivals"));
        Ok(Self {
            name: name.into(),
            queries,
        })
    }

    /// Name of the trace (e.g. "crs-like").
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The queries, sorted by arrival time.
    pub fn queries(&self) -> &[Query] {
        &self.queries
    }

    /// Number of queries.
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// Whether the trace holds no queries (never true once constructed).
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }

    /// Arrival time of the first query.
    pub fn start(&self) -> f64 {
        self.queries.first().expect("non-empty").arrival
    }

    /// Arrival time of the last query.
    pub fn end(&self) -> f64 {
        self.queries.last().expect("non-empty").arrival
    }

    /// Duration between the first and last arrival.
    pub fn duration(&self) -> f64 {
        self.end() - self.start()
    }

    /// Average queries per second over the trace duration.
    pub fn mean_qps(&self) -> f64 {
        let d = self.duration();
        if d <= 0.0 {
            self.queries.len() as f64
        } else {
            self.queries.len() as f64 / d
        }
    }

    /// Arrival timestamps only.
    pub fn arrival_times(&self) -> Vec<f64> {
        self.queries.iter().map(|q| q.arrival).collect()
    }

    /// Restrict the trace to arrivals within `[from, to)`.
    pub fn slice(
        &self,
        from: f64,
        to: f64,
        name: impl Into<String>,
    ) -> Result<Self, SimulatorError> {
        let queries: Vec<Query> = self
            .queries
            .iter()
            .copied()
            .filter(|q| q.arrival >= from && q.arrival < to)
            .collect();
        Trace::new(name, queries)
    }

    /// Split the trace at time `t` into (training, testing) halves.
    pub fn split_at(&self, t: f64) -> Result<(Self, Self), SimulatorError> {
        let train = self.slice(f64::NEG_INFINITY, t, format!("{}-train", self.name))?;
        let test = self.slice(t, f64::INFINITY, format!("{}-test", self.name))?;
        Ok((train, test))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(arrival: f64, processing: f64) -> Query {
        Query {
            arrival,
            processing,
        }
    }

    #[test]
    fn construction_sorts_and_validates() {
        assert!(Trace::new("empty", vec![]).is_err());
        assert!(Trace::new("bad", vec![q(f64::NAN, 1.0)]).is_err());
        assert!(Trace::new("bad", vec![q(1.0, -2.0)]).is_err());
        let t = Trace::new("t", vec![q(5.0, 1.0), q(1.0, 2.0), q(3.0, 0.5)]).unwrap();
        assert_eq!(t.len(), 3);
        assert_eq!(t.queries()[0].arrival, 1.0);
        assert_eq!(t.queries()[2].arrival, 5.0);
        assert_eq!(t.start(), 1.0);
        assert_eq!(t.end(), 5.0);
        assert_eq!(t.duration(), 4.0);
        assert_eq!(t.name(), "t");
        assert!(!t.is_empty());
    }

    #[test]
    fn qps_and_arrival_times() {
        let t = Trace::new("t", (0..11).map(|i| q(i as f64 * 10.0, 1.0)).collect()).unwrap();
        assert!((t.mean_qps() - 0.11).abs() < 1e-12);
        assert_eq!(t.arrival_times().len(), 11);
        // Degenerate single-arrival trace.
        let single = Trace::new("s", vec![q(4.0, 1.0)]).unwrap();
        assert_eq!(single.mean_qps(), 1.0);
    }

    #[test]
    fn slicing_and_splitting() {
        let t = Trace::new("t", (0..100).map(|i| q(i as f64, 1.0)).collect()).unwrap();
        let mid = t.slice(20.0, 30.0, "mid").unwrap();
        assert_eq!(mid.len(), 10);
        assert_eq!(mid.start(), 20.0);
        let (train, test) = t.split_at(70.0).unwrap();
        assert_eq!(train.len(), 70);
        assert_eq!(test.len(), 30);
        assert!(train.name().ends_with("-train"));
        assert!(test.name().ends_with("-test"));
        // Slicing outside the range errors because the result would be empty.
        assert!(t.slice(1000.0, 2000.0, "empty").is_err());
    }

    #[test]
    fn serde_round_trip() {
        let t = Trace::new("t", vec![q(1.0, 2.0), q(3.0, 4.0)]).unwrap();
        let json = serde_json::to_string(&t).unwrap();
        let back: Trace = serde_json::from_str(&json).unwrap();
        assert_eq!(t, back);
    }
}
