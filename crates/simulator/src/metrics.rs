//! Per-query and aggregate metrics collected by the simulator.
//!
//! The paper's evaluation reports: hit rate, average response time,
//! total/relative cost (sum of instance lifecycle lengths), high response
//! time quantiles (Table II), and the variance of windowed QoS averages
//! (Fig. 5). All of those are derived here.

use crate::error::SimulatorError;
use robustscaler_stats::{mean, quantiles, variance};
use serde::{Deserialize, Serialize};

/// Outcome of one simulated query.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QueryOutcome {
    /// Arrival time of the query.
    pub arrival: f64,
    /// Response time (waiting + processing).
    pub response_time: f64,
    /// Waiting time before processing started.
    pub waiting_time: f64,
    /// Whether a ready instance was available on arrival.
    pub hit: bool,
    /// Whether the query triggered a reactive cold start.
    pub cold_start: bool,
}

/// Lifecycle record of one instance.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InstanceRecord {
    /// Creation time.
    pub created_at: f64,
    /// Deletion time (after serving its query, on scale-in, or at the end of
    /// the simulation).
    pub deleted_at: f64,
    /// Whether the instance ever served a query.
    pub served_query: bool,
}

impl InstanceRecord {
    /// Lifecycle length (the paper's per-instance cost).
    pub fn lifecycle(&self) -> f64 {
        (self.deleted_at - self.created_at).max(0.0)
    }
}

/// Aggregated simulation results.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct SimulationMetrics {
    /// Per-query outcomes in arrival order.
    pub queries: Vec<QueryOutcome>,
    /// Per-instance lifecycle records.
    pub instances: Vec<InstanceRecord>,
}

impl SimulationMetrics {
    /// Number of simulated queries.
    pub fn query_count(&self) -> usize {
        self.queries.len()
    }

    /// Fraction of queries that found a ready instance upon arrival
    /// (the paper's `hit_rate`).
    pub fn hit_rate(&self) -> f64 {
        if self.queries.is_empty() {
            return 0.0;
        }
        self.queries.iter().filter(|q| q.hit).count() as f64 / self.queries.len() as f64
    }

    /// Average response time in seconds (the paper's `rt_avg`).
    pub fn rt_avg(&self) -> f64 {
        mean(
            &self
                .queries
                .iter()
                .map(|q| q.response_time)
                .collect::<Vec<f64>>(),
        )
    }

    /// Average waiting time in seconds.
    pub fn waiting_avg(&self) -> f64 {
        mean(
            &self
                .queries
                .iter()
                .map(|q| q.waiting_time)
                .collect::<Vec<f64>>(),
        )
    }

    /// Total cost: the sum of all instance lifecycle lengths in seconds
    /// (the paper's `total_cost`).
    pub fn total_cost(&self) -> f64 {
        self.instances.iter().map(|i| i.lifecycle()).sum()
    }

    /// Average cost per query.
    pub fn cost_per_query(&self) -> f64 {
        if self.queries.is_empty() {
            return 0.0;
        }
        self.total_cost() / self.queries.len() as f64
    }

    /// Fraction of queries that triggered a reactive cold start.
    pub fn cold_start_rate(&self) -> f64 {
        if self.queries.is_empty() {
            return 0.0;
        }
        self.queries.iter().filter(|q| q.cold_start).count() as f64 / self.queries.len() as f64
    }

    /// Response-time quantiles at the requested levels (Table II uses
    /// 75/95/99/99.9%).
    pub fn rt_quantiles(&self, levels: &[f64]) -> Result<Vec<f64>, SimulatorError> {
        if self.queries.is_empty() {
            return Err(SimulatorError::EmptyMetrics);
        }
        let rts: Vec<f64> = self.queries.iter().map(|q| q.response_time).collect();
        quantiles(&rts, levels).map_err(|_| SimulatorError::EmptyMetrics)
    }

    /// Variance of the response-time averages over consecutive windows of
    /// `window` queries — the QoS-stability metric of Fig. 5(b).
    pub fn windowed_rt_variance(&self, window: usize) -> Result<f64, SimulatorError> {
        self.windowed_variance(window, |q| q.response_time)
    }

    /// Variance of the hit-rate over consecutive windows of `window` queries
    /// — the QoS-stability metric of Fig. 5(a).
    pub fn windowed_hit_variance(&self, window: usize) -> Result<f64, SimulatorError> {
        self.windowed_variance(window, |q| if q.hit { 1.0 } else { 0.0 })
    }

    fn windowed_variance<F>(&self, window: usize, metric: F) -> Result<f64, SimulatorError>
    where
        F: Fn(&QueryOutcome) -> f64,
    {
        if window == 0 {
            return Err(SimulatorError::InvalidParameter("window must be >= 1"));
        }
        if self.queries.is_empty() {
            return Err(SimulatorError::EmptyMetrics);
        }
        let window_means: Vec<f64> = self
            .queries
            .chunks(window)
            .map(|chunk| mean(&chunk.iter().map(&metric).collect::<Vec<f64>>()))
            .collect();
        Ok(variance(&window_means))
    }

    /// Number of instances that never served a query (wasted warm capacity).
    pub fn unused_instances(&self) -> usize {
        self.instances.iter().filter(|i| !i.served_query).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(rt: f64, hit: bool) -> QueryOutcome {
        QueryOutcome {
            arrival: 0.0,
            response_time: rt,
            waiting_time: rt - 1.0,
            hit,
            cold_start: !hit,
        }
    }

    fn instance(created: f64, deleted: f64, served: bool) -> InstanceRecord {
        InstanceRecord {
            created_at: created,
            deleted_at: deleted,
            served_query: served,
        }
    }

    #[test]
    fn aggregates_are_computed_correctly() {
        let metrics = SimulationMetrics {
            queries: vec![outcome(2.0, true), outcome(4.0, false), outcome(6.0, true)],
            instances: vec![
                instance(0.0, 10.0, true),
                instance(5.0, 8.0, true),
                instance(7.0, 9.0, false),
            ],
        };
        assert_eq!(metrics.query_count(), 3);
        assert!((metrics.hit_rate() - 2.0 / 3.0).abs() < 1e-12);
        assert!((metrics.rt_avg() - 4.0).abs() < 1e-12);
        assert!((metrics.waiting_avg() - 3.0).abs() < 1e-12);
        assert!((metrics.total_cost() - 15.0).abs() < 1e-12);
        assert!((metrics.cost_per_query() - 5.0).abs() < 1e-12);
        assert!((metrics.cold_start_rate() - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(metrics.unused_instances(), 1);
    }

    #[test]
    fn empty_metrics_are_safe_or_error() {
        let empty = SimulationMetrics::default();
        assert_eq!(empty.hit_rate(), 0.0);
        assert_eq!(empty.rt_avg(), 0.0);
        assert_eq!(empty.total_cost(), 0.0);
        assert_eq!(empty.cost_per_query(), 0.0);
        assert!(empty.rt_quantiles(&[0.5]).is_err());
        assert!(empty.windowed_rt_variance(50).is_err());
    }

    #[test]
    fn quantiles_match_manual_computation() {
        let metrics = SimulationMetrics {
            queries: (1..=100).map(|i| outcome(i as f64, true)).collect(),
            instances: vec![],
        };
        let qs = metrics.rt_quantiles(&[0.75, 0.95, 0.99]).unwrap();
        assert!((qs[0] - 75.25).abs() < 0.5);
        assert!((qs[1] - 95.05).abs() < 0.5);
        assert!((qs[2] - 99.01).abs() < 0.5);
    }

    #[test]
    fn windowed_variance_detects_instability() {
        // Stable: identical response times.
        let stable = SimulationMetrics {
            queries: (0..200).map(|_| outcome(5.0, true)).collect(),
            instances: vec![],
        };
        assert!(stable.windowed_rt_variance(50).unwrap() < 1e-12);
        // Unstable: alternating windows of fast/slow responses.
        let unstable = SimulationMetrics {
            queries: (0..200)
                .map(|i| outcome(if (i / 50) % 2 == 0 { 1.0 } else { 21.0 }, true))
                .collect(),
            instances: vec![],
        };
        assert!(unstable.windowed_rt_variance(50).unwrap() > 50.0);
        assert!(unstable.windowed_hit_variance(50).unwrap() < 1e-12);
        assert!(unstable.windowed_rt_variance(0).is_err());
    }

    #[test]
    fn lifecycle_is_non_negative() {
        let rec = instance(5.0, 4.0, false);
        assert_eq!(rec.lifecycle(), 0.0);
    }
}
