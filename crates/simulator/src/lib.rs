//! Discrete-event simulator of the scaling-per-query scenario
//! (paper Section III, Algorithm 1) plus the heuristic baseline autoscalers
//! used in the evaluation (Backup Pool and Adaptive Backup Pool).
//!
//! The simulator replays a workload trace (arrival + processing time per
//! query) against an [`Autoscaler`] policy. The policy schedules instance
//! creations; arriving queries consume the earliest-ready idle instance, wait
//! for a pending one, or trigger a reactive cold start when nothing is
//! available. The simulator records per-query response times, hits and
//! per-instance lifecycle costs — exactly the metrics reported in the
//! paper's evaluation (hit rate, rt_avg, total/relative cost, QoS variance).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod autoscaler;
pub mod baselines;
pub mod engine;
pub mod error;
pub mod metrics;
pub mod trace;

pub use autoscaler::{Autoscaler, ScalingCommand, SystemState};
pub use baselines::{AdaptiveBackupPool, BackupPool, Reactive};
pub use engine::{PendingTimeDistribution, SimulationConfig, Simulator};
pub use error::SimulatorError;
pub use metrics::{InstanceRecord, QueryOutcome, SimulationMetrics};
pub use trace::{Query, Trace};
