//! The autoscaler policy interface seen by the simulator.
//!
//! A policy reacts to three kinds of hooks — simulation start, periodic
//! planning ticks, and query arrivals — and responds with scaling commands
//! (create an instance now, schedule a creation for later, or scale idle
//! instances in). The RobustScaler variants live in `robustscaler-core`
//! (they need the NHPP forecast); the heuristic baselines live in
//! [`crate::baselines`].

use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// A scaling action emitted by a policy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ScalingCommand {
    /// Create `count` instances immediately.
    CreateNow(usize),
    /// Schedule one instance creation at the given absolute time
    /// (must not lie in the past; the simulator clamps it to "now").
    CreateAt(f64),
    /// Delete up to `count` idle (ready or pending) instances.
    ScaleIn(usize),
}

/// A read-only snapshot of the system the policy can inspect when deciding.
#[derive(Debug, Clone)]
pub struct SystemState {
    /// Current simulation time.
    pub now: f64,
    /// Idle instances that are fully started.
    pub idle_ready: usize,
    /// Idle instances still pending (starting up).
    pub idle_pending: usize,
    /// Creations scheduled for the future but not yet materialized.
    pub scheduled: usize,
    /// Total number of queries that have arrived so far.
    pub arrivals_so_far: usize,
    /// Arrival timestamps within the recent-history window kept by the
    /// simulator (most recent last).
    pub recent_arrivals: VecDeque<f64>,
}

impl SystemState {
    /// Number of upcoming arrivals already covered by idle instances or
    /// scheduled creations.
    pub fn covered(&self) -> usize {
        self.idle_ready + self.idle_pending + self.scheduled
    }

    /// Observed queries-per-second over the trailing `window` seconds.
    pub fn recent_qps(&self, window: f64) -> f64 {
        if window <= 0.0 {
            return 0.0;
        }
        let cutoff = self.now - window;
        let count = self
            .recent_arrivals
            .iter()
            .filter(|&&t| t >= cutoff)
            .count();
        count as f64 / window
    }
}

/// An autoscaling policy driven by the simulator.
pub trait Autoscaler {
    /// Human-readable policy name (used in experiment reports).
    fn name(&self) -> &str;

    /// How often (in seconds) the simulator should call
    /// [`Autoscaler::on_planning_tick`]; `None` disables planning ticks.
    fn planning_interval(&self) -> Option<f64> {
        None
    }

    /// Called once before the first query.
    fn on_start(&mut self, _now: f64) -> Vec<ScalingCommand> {
        Vec::new()
    }

    /// Called at every planning tick.
    fn on_planning_tick(&mut self, _state: &SystemState) -> Vec<ScalingCommand> {
        Vec::new()
    }

    /// Called immediately after each query arrival has been dispatched.
    fn on_query_arrival(&mut self, _state: &SystemState) -> Vec<ScalingCommand> {
        Vec::new()
    }

    /// Whether a reactive cold start should cancel the earliest scheduled
    /// future creation (Algorithm 1's "the originally scheduled creation is
    /// canceled"). Pool-style policies keep their schedules.
    fn cancel_scheduled_on_cold_start(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn system_state_helpers() {
        let state = SystemState {
            now: 100.0,
            idle_ready: 2,
            idle_pending: 1,
            scheduled: 3,
            arrivals_so_far: 42,
            recent_arrivals: VecDeque::from(vec![40.0, 80.0, 95.0, 99.0]),
        };
        assert_eq!(state.covered(), 6);
        // Window of 30 s: arrivals at 80, 95, 99 → 3 / 30.
        assert!((state.recent_qps(30.0) - 0.1).abs() < 1e-12);
        // Window of 5 s: the arrivals at 95 and 99 (cutoff is inclusive).
        assert!((state.recent_qps(5.0) - 0.4).abs() < 1e-12);
        assert_eq!(state.recent_qps(0.0), 0.0);
    }

    struct Noop;
    impl Autoscaler for Noop {
        fn name(&self) -> &str {
            "noop"
        }
    }

    #[test]
    fn default_trait_methods_do_nothing() {
        let mut policy = Noop;
        assert_eq!(policy.name(), "noop");
        assert!(policy.planning_interval().is_none());
        assert!(policy.on_start(0.0).is_empty());
        assert!(!policy.cancel_scheduled_on_cold_start());
        let state = SystemState {
            now: 0.0,
            idle_ready: 0,
            idle_pending: 0,
            scheduled: 0,
            arrivals_so_far: 0,
            recent_arrivals: VecDeque::new(),
        };
        assert!(policy.on_planning_tick(&state).is_empty());
        assert!(policy.on_query_arrival(&state).is_empty());
    }
}
