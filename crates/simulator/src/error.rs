//! Error type for the simulator crate.

use std::fmt;

/// Errors produced by trace construction and simulation.
#[derive(Debug, Clone, PartialEq)]
pub enum SimulatorError {
    /// A parameter was invalid.
    InvalidParameter(&'static str),
    /// The trace is empty or not sorted by arrival time.
    InvalidTrace(&'static str),
    /// A metric was requested from an empty result set.
    EmptyMetrics,
}

impl fmt::Display for SimulatorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimulatorError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
            SimulatorError::InvalidTrace(msg) => write!(f, "invalid trace: {msg}"),
            SimulatorError::EmptyMetrics => write!(f, "no queries were simulated"),
        }
    }
}

impl std::error::Error for SimulatorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(SimulatorError::InvalidParameter("seed")
            .to_string()
            .contains("seed"));
        assert!(SimulatorError::InvalidTrace("unsorted")
            .to_string()
            .contains("unsorted"));
        assert_eq!(
            SimulatorError::EmptyMetrics.to_string(),
            "no queries were simulated"
        );
    }
}
