//! The discrete-event simulation engine (paper Algorithm 1 dynamics).
//!
//! The engine replays a [`Trace`] against an [`Autoscaler`]. Three event
//! types are processed in chronological order: scheduled instance creations
//! materialize into (pending) instances, planning ticks give the policy a
//! chance to adjust its plan, and query arrivals consume instances.
//!
//! Dispatch rule on a query arrival (matching Section III):
//! 1. if an idle *ready* instance exists, the query is a **hit** and is
//!    processed immediately (the earliest-created ready instance is used);
//! 2. otherwise, if an idle *pending* instance exists, the query waits for
//!    the one that will be ready soonest;
//! 3. otherwise a **cold start** occurs: a fresh instance is created at the
//!    arrival instant, and (for policies that request it) the earliest
//!    scheduled future creation is canceled — it was meant for this query.
//!
//! Every instance is deleted as soon as it finishes processing its query;
//! instances still idle when the simulation ends are charged until the end
//! of the trace, which is how the paper's total cost accounts for wasted
//! warm capacity.

use crate::autoscaler::{Autoscaler, ScalingCommand, SystemState};
use crate::error::SimulatorError;
use crate::metrics::{InstanceRecord, QueryOutcome, SimulationMetrics};
use crate::trace::Trace;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Distribution of instance pending (startup) times.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum PendingTimeDistribution {
    /// Every instance takes exactly this long to start (seconds).
    Deterministic(f64),
    /// Log-normal startup time with the given mean and standard deviation.
    LogNormal {
        /// Mean startup time in seconds.
        mean: f64,
        /// Standard deviation of the startup time in seconds.
        std_dev: f64,
    },
}

impl PendingTimeDistribution {
    /// Validate the parameters.
    pub fn validate(&self) -> Result<(), SimulatorError> {
        match self {
            PendingTimeDistribution::Deterministic(v) => {
                if !(*v >= 0.0) || !v.is_finite() {
                    return Err(SimulatorError::InvalidParameter(
                        "deterministic pending time must be finite and >= 0",
                    ));
                }
            }
            PendingTimeDistribution::LogNormal { mean, std_dev } => {
                if !(*mean > 0.0) || !(*std_dev > 0.0) {
                    return Err(SimulatorError::InvalidParameter(
                        "log-normal pending time needs mean > 0 and std_dev > 0",
                    ));
                }
            }
        }
        Ok(())
    }

    /// Expected pending time.
    pub fn mean(&self) -> f64 {
        match self {
            PendingTimeDistribution::Deterministic(v) => *v,
            PendingTimeDistribution::LogNormal { mean, .. } => *mean,
        }
    }

    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        use robustscaler_stats::ContinuousDistribution;
        match self {
            PendingTimeDistribution::Deterministic(v) => *v,
            PendingTimeDistribution::LogNormal { mean, std_dev } => {
                robustscaler_stats::LogNormal::from_mean_std(*mean, *std_dev)
                    .expect("validated parameters")
                    .sample(rng)
            }
        }
    }
}

/// Configuration of a simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimulationConfig {
    /// Instance startup time distribution.
    pub pending: PendingTimeDistribution,
    /// RNG seed (pending-time sampling and any stochastic policy decisions
    /// made through the engine are reproducible given the seed).
    pub seed: u64,
    /// How many seconds of recent arrivals to expose to policies via
    /// [`SystemState::recent_arrivals`].
    pub recent_history_window: f64,
}

impl Default for SimulationConfig {
    fn default() -> Self {
        Self {
            pending: PendingTimeDistribution::Deterministic(13.0),
            seed: 0,
            recent_history_window: 600.0,
        }
    }
}

/// An instance that has been created but not yet assigned to a query.
#[derive(Debug, Clone, Copy)]
struct IdleInstance {
    created_at: f64,
    ready_at: f64,
}

/// The simulator.
#[derive(Debug, Clone)]
pub struct Simulator {
    config: SimulationConfig,
}

impl Simulator {
    /// Create a simulator with the given configuration.
    pub fn new(config: SimulationConfig) -> Result<Self, SimulatorError> {
        config.pending.validate()?;
        if !(config.recent_history_window > 0.0) {
            return Err(SimulatorError::InvalidParameter(
                "recent_history_window must be > 0",
            ));
        }
        Ok(Self { config })
    }

    /// The configuration in use.
    pub fn config(&self) -> &SimulationConfig {
        &self.config
    }

    /// Replay `trace` against `policy` and collect metrics.
    pub fn run<A: Autoscaler>(
        &self,
        trace: &Trace,
        policy: &mut A,
    ) -> Result<SimulationMetrics, SimulatorError> {
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let mut state = EngineState::new(trace.start(), self.config.recent_history_window);
        let mut metrics = SimulationMetrics::default();

        let start = trace.start();
        let commands = policy.on_start(start);
        state.apply_commands(&commands, start, &self.config, &mut rng, &mut metrics);

        let planning_interval = policy.planning_interval();
        let mut next_tick = planning_interval.map(|d| start + d);

        for query in trace.queries() {
            let arrival = query.arrival;

            // Planning ticks strictly before this arrival.
            if let (Some(interval), Some(tick)) = (planning_interval, next_tick.as_mut()) {
                while *tick <= arrival {
                    state.materialize_scheduled(*tick, &self.config, &mut rng);
                    let snapshot = state.snapshot(*tick);
                    let commands = policy.on_planning_tick(&snapshot);
                    state.apply_commands(&commands, *tick, &self.config, &mut rng, &mut metrics);
                    *tick += interval;
                }
            }

            state.materialize_scheduled(arrival, &self.config, &mut rng);
            state.record_arrival(arrival);

            // Dispatch the query.
            let outcome = state.dispatch_query(
                arrival,
                query.processing,
                policy.cancel_scheduled_on_cold_start(),
                &self.config,
                &mut rng,
                &mut metrics,
            );
            metrics.queries.push(outcome);

            let snapshot = state.snapshot(arrival);
            let commands = policy.on_query_arrival(&snapshot);
            state.apply_commands(&commands, arrival, &self.config, &mut rng, &mut metrics);
        }

        // Charge leftover idle instances until the end of the trace.
        let end = trace.end();
        for instance in state.idle.drain(..) {
            metrics.instances.push(InstanceRecord {
                created_at: instance.created_at,
                deleted_at: end.max(instance.created_at),
                served_query: false,
            });
        }
        Ok(metrics)
    }
}

/// Mutable engine bookkeeping.
struct EngineState {
    idle: Vec<IdleInstance>,
    scheduled: Vec<f64>,
    recent_arrivals: VecDeque<f64>,
    recent_window: f64,
    arrivals_so_far: usize,
    now: f64,
}

impl EngineState {
    fn new(start: f64, recent_window: f64) -> Self {
        Self {
            idle: Vec::new(),
            scheduled: Vec::new(),
            recent_arrivals: VecDeque::new(),
            recent_window,
            arrivals_so_far: 0,
            now: start,
        }
    }

    fn snapshot(&self, now: f64) -> SystemState {
        let idle_ready = self.idle.iter().filter(|i| i.ready_at <= now).count();
        SystemState {
            now,
            idle_ready,
            idle_pending: self.idle.len() - idle_ready,
            scheduled: self.scheduled.len(),
            arrivals_so_far: self.arrivals_so_far,
            recent_arrivals: self.recent_arrivals.clone(),
        }
    }

    fn record_arrival(&mut self, arrival: f64) {
        self.arrivals_so_far += 1;
        self.recent_arrivals.push_back(arrival);
        let cutoff = arrival - self.recent_window;
        while self
            .recent_arrivals
            .front()
            .map(|&t| t < cutoff)
            .unwrap_or(false)
        {
            self.recent_arrivals.pop_front();
        }
    }

    fn create_instance<R: Rng + ?Sized>(
        &mut self,
        at: f64,
        config: &SimulationConfig,
        rng: &mut R,
    ) {
        let pending = config.pending.sample(rng);
        self.idle.push(IdleInstance {
            created_at: at,
            ready_at: at + pending,
        });
    }

    fn materialize_scheduled<R: Rng + ?Sized>(
        &mut self,
        up_to: f64,
        config: &SimulationConfig,
        rng: &mut R,
    ) {
        self.now = self.now.max(up_to);
        let mut remaining = Vec::with_capacity(self.scheduled.len());
        let due: Vec<f64> = {
            let mut due = Vec::new();
            for &t in &self.scheduled {
                if t <= up_to {
                    due.push(t);
                } else {
                    remaining.push(t);
                }
            }
            due
        };
        self.scheduled = remaining;
        for t in due {
            self.create_instance(t, config, rng);
        }
    }

    fn apply_commands<R: Rng + ?Sized>(
        &mut self,
        commands: &[ScalingCommand],
        now: f64,
        config: &SimulationConfig,
        rng: &mut R,
        metrics: &mut SimulationMetrics,
    ) {
        for command in commands {
            match *command {
                ScalingCommand::CreateNow(count) => {
                    for _ in 0..count {
                        self.create_instance(now, config, rng);
                    }
                }
                ScalingCommand::CreateAt(t) => {
                    self.scheduled.push(t.max(now));
                }
                ScalingCommand::ScaleIn(count) => {
                    for _ in 0..count {
                        // Remove the most recently created idle instance first
                        // (the least likely to be needed soon).
                        if let Some(pos) = self
                            .idle
                            .iter()
                            .enumerate()
                            .max_by(|a, b| {
                                a.1.created_at
                                    .partial_cmp(&b.1.created_at)
                                    .expect("finite times")
                            })
                            .map(|(i, _)| i)
                        {
                            let removed = self.idle.swap_remove(pos);
                            metrics.instances.push(InstanceRecord {
                                created_at: removed.created_at,
                                deleted_at: now,
                                served_query: false,
                            });
                        } else if !self.scheduled.is_empty() {
                            // No idle instance to remove: cancel a scheduled
                            // creation instead (latest first).
                            let pos = self
                                .scheduled
                                .iter()
                                .enumerate()
                                .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite times"))
                                .map(|(i, _)| i)
                                .expect("non-empty");
                            self.scheduled.swap_remove(pos);
                        }
                    }
                }
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn dispatch_query<R: Rng + ?Sized>(
        &mut self,
        arrival: f64,
        processing: f64,
        cancel_scheduled_on_cold_start: bool,
        config: &SimulationConfig,
        rng: &mut R,
        metrics: &mut SimulationMetrics,
    ) -> QueryOutcome {
        // Prefer the earliest-ready instance; ready instances beat pending ones
        // automatically because their ready_at is smaller.
        let chosen = self
            .idle
            .iter()
            .enumerate()
            .min_by(|a, b| {
                a.1.ready_at
                    .partial_cmp(&b.1.ready_at)
                    .expect("finite times")
            })
            .map(|(i, _)| i);

        match chosen {
            Some(index) if self.idle[index].ready_at <= arrival => {
                // Hit: processing starts immediately.
                let instance = self.idle.swap_remove(index);
                metrics.instances.push(InstanceRecord {
                    created_at: instance.created_at,
                    deleted_at: arrival + processing,
                    served_query: true,
                });
                QueryOutcome {
                    arrival,
                    response_time: processing,
                    waiting_time: 0.0,
                    hit: true,
                    cold_start: false,
                }
            }
            Some(index) => {
                // An instance is pending: the query waits for it.
                let instance = self.idle.swap_remove(index);
                let waiting = instance.ready_at - arrival;
                metrics.instances.push(InstanceRecord {
                    created_at: instance.created_at,
                    deleted_at: instance.ready_at + processing,
                    served_query: true,
                });
                QueryOutcome {
                    arrival,
                    response_time: waiting + processing,
                    waiting_time: waiting,
                    hit: false,
                    cold_start: false,
                }
            }
            None => {
                // Cold start.
                if cancel_scheduled_on_cold_start && !self.scheduled.is_empty() {
                    let pos = self
                        .scheduled
                        .iter()
                        .enumerate()
                        .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite times"))
                        .map(|(i, _)| i)
                        .expect("non-empty");
                    self.scheduled.swap_remove(pos);
                }
                let pending = config.pending.sample(rng);
                metrics.instances.push(InstanceRecord {
                    created_at: arrival,
                    deleted_at: arrival + pending + processing,
                    served_query: true,
                });
                QueryOutcome {
                    arrival,
                    response_time: pending + processing,
                    waiting_time: pending,
                    hit: false,
                    cold_start: true,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::{BackupPool, Reactive};
    use crate::trace::Query;

    fn uniform_trace(n: usize, gap: f64, processing: f64) -> Trace {
        Trace::new(
            "uniform",
            (0..n)
                .map(|i| Query {
                    arrival: i as f64 * gap,
                    processing,
                })
                .collect(),
        )
        .unwrap()
    }

    fn simulator(pending: f64) -> Simulator {
        Simulator::new(SimulationConfig {
            pending: PendingTimeDistribution::Deterministic(pending),
            seed: 7,
            recent_history_window: 600.0,
        })
        .unwrap()
    }

    #[test]
    fn config_validation() {
        assert!(Simulator::new(SimulationConfig {
            pending: PendingTimeDistribution::Deterministic(-1.0),
            ..SimulationConfig::default()
        })
        .is_err());
        assert!(Simulator::new(SimulationConfig {
            recent_history_window: 0.0,
            ..SimulationConfig::default()
        })
        .is_err());
        assert!(PendingTimeDistribution::LogNormal {
            mean: 0.0,
            std_dev: 1.0
        }
        .validate()
        .is_err());
        assert_eq!(PendingTimeDistribution::Deterministic(13.0).mean(), 13.0);
    }

    #[test]
    fn reactive_policy_cold_starts_every_query() {
        let trace = uniform_trace(50, 100.0, 5.0);
        let sim = simulator(13.0);
        let mut policy = Reactive::new();
        let metrics = sim.run(&trace, &mut policy).unwrap();
        assert_eq!(metrics.query_count(), 50);
        assert_eq!(metrics.hit_rate(), 0.0);
        assert_eq!(metrics.cold_start_rate(), 1.0);
        // RT = pending + processing for every query.
        assert!((metrics.rt_avg() - 18.0).abs() < 1e-9);
        // Cost = (pending + processing) per query.
        assert!((metrics.total_cost() - 50.0 * 18.0).abs() < 1e-9);
        assert_eq!(metrics.instances.len(), 50);
    }

    #[test]
    fn backup_pool_hits_when_gaps_exceed_pending_time() {
        // Arrivals every 100 s, pending 13 s: a pool of one instance is always
        // replenished in time, so every query after the first warm-up hits.
        let trace = uniform_trace(50, 100.0, 5.0);
        let sim = simulator(13.0);
        let mut policy = BackupPool::new(1);
        let metrics = sim.run(&trace, &mut policy).unwrap();
        // The pool is created at the first arrival's time (on_start), so the
        // very first query may wait for it; all others hit.
        assert!(
            metrics.hit_rate() >= 0.97,
            "hit rate {}",
            metrics.hit_rate()
        );
        // Cost exceeds the reactive baseline because instances idle.
        let mut reactive = Reactive::new();
        let reactive_metrics = sim.run(&trace, &mut reactive).unwrap();
        assert!(metrics.total_cost() > reactive_metrics.total_cost());
    }

    #[test]
    fn backup_pool_of_zero_is_reactive() {
        let trace = uniform_trace(30, 50.0, 2.0);
        let sim = simulator(10.0);
        let mut bp0 = BackupPool::new(0);
        let mut reactive = Reactive::new();
        let a = sim.run(&trace, &mut bp0).unwrap();
        let b = sim.run(&trace, &mut reactive).unwrap();
        assert_eq!(a.hit_rate(), b.hit_rate());
        assert!((a.total_cost() - b.total_cost()).abs() < 1e-9);
        assert!((a.rt_avg() - b.rt_avg()).abs() < 1e-9);
    }

    #[test]
    fn every_query_is_served_exactly_once() {
        let trace = uniform_trace(200, 7.0, 3.0);
        let sim = simulator(13.0);
        let mut policy = BackupPool::new(3);
        let metrics = sim.run(&trace, &mut policy).unwrap();
        assert_eq!(metrics.query_count(), 200);
        let served = metrics.instances.iter().filter(|i| i.served_query).count();
        assert_eq!(served, 200);
        // Conservation: every instance has a non-negative lifecycle.
        assert!(metrics.instances.iter().all(|i| i.lifecycle() >= 0.0));
    }

    #[test]
    fn pending_instances_reduce_waiting_compared_to_cold_start() {
        // Queries arrive every 10 s with pending 13 s. A pool of 2 means a
        // query usually finds an instance that has been pending for ~7+ s,
        // so waits less than a full cold start.
        let trace = uniform_trace(100, 10.0, 1.0);
        let sim = simulator(13.0);
        let mut pool = BackupPool::new(2);
        let pooled = sim.run(&trace, &mut pool).unwrap();
        let mut reactive = Reactive::new();
        let react = sim.run(&trace, &mut reactive).unwrap();
        assert!(pooled.waiting_avg() < react.waiting_avg());
        assert!(pooled.rt_avg() < react.rt_avg());
    }

    #[test]
    fn scheduled_creations_materialize_and_serve_queries() {
        // A policy that pre-schedules one instance 20 s before each arrival.
        struct Prescheduler {
            arrivals: Vec<f64>,
        }
        impl Autoscaler for Prescheduler {
            fn name(&self) -> &str {
                "prescheduler"
            }
            fn on_start(&mut self, _now: f64) -> Vec<ScalingCommand> {
                self.arrivals
                    .iter()
                    .map(|&a| ScalingCommand::CreateAt(a - 20.0))
                    .collect()
            }
            fn cancel_scheduled_on_cold_start(&self) -> bool {
                true
            }
        }
        let trace = uniform_trace(20, 60.0, 2.0);
        let sim = simulator(13.0);
        let mut policy = Prescheduler {
            arrivals: trace.arrival_times(),
        };
        let metrics = sim.run(&trace, &mut policy).unwrap();
        // Every query except possibly the first (whose creation time would be
        // negative and is clamped to the start) hits.
        assert!(
            metrics.hit_rate() >= 0.95,
            "hit rate {}",
            metrics.hit_rate()
        );
        // Idle time is about 20 − 13 = 7 s per instance.
        let mean_cost = metrics.cost_per_query();
        assert!(
            (mean_cost - (7.0 + 13.0 + 2.0)).abs() < 1.5,
            "cost {mean_cost}"
        );
    }

    #[test]
    fn scale_in_removes_idle_instances_and_charges_their_lifetime() {
        struct CreateThenShrink {
            done: bool,
        }
        impl Autoscaler for CreateThenShrink {
            fn name(&self) -> &str {
                "create-then-shrink"
            }
            fn planning_interval(&self) -> Option<f64> {
                Some(30.0)
            }
            fn on_start(&mut self, _now: f64) -> Vec<ScalingCommand> {
                vec![ScalingCommand::CreateNow(5)]
            }
            fn on_planning_tick(&mut self, _state: &SystemState) -> Vec<ScalingCommand> {
                if self.done {
                    Vec::new()
                } else {
                    self.done = true;
                    vec![ScalingCommand::ScaleIn(3)]
                }
            }
        }
        let trace = uniform_trace(5, 100.0, 1.0);
        let sim = simulator(5.0);
        let mut policy = CreateThenShrink { done: false };
        let metrics = sim.run(&trace, &mut policy).unwrap();
        // 5 pool instances + 0 extra (arrivals served from pool); 3 were
        // scaled in at t=30 having existed 30 s each.
        let unused = metrics.unused_instances();
        assert!(unused >= 3, "unused {unused}");
        let scaled_in_cost: f64 = metrics
            .instances
            .iter()
            .filter(|i| !i.served_query && i.deleted_at <= 30.0 + 1e-9)
            .map(|i| i.lifecycle())
            .sum();
        assert!((scaled_in_cost - 90.0).abs() < 1e-6, "{scaled_in_cost}");
    }

    #[test]
    fn leftover_idle_instances_are_charged_to_trace_end() {
        let trace = uniform_trace(3, 10.0, 1.0);
        let sim = simulator(5.0);
        let mut policy = BackupPool::new(4);
        let metrics = sim.run(&trace, &mut policy).unwrap();
        // 4 initial + 3 replenished = 7 instances; 3 served, 4 idle at the end
        // charged until the last arrival (t = 20).
        assert_eq!(metrics.instances.len(), 7);
        assert_eq!(metrics.unused_instances(), 4);
    }
}
