//! The heuristic baseline autoscalers from the paper's evaluation
//! (§VII-A1): the purely reactive strategy, the Backup Pool, and the
//! Adaptive Backup Pool.

use crate::autoscaler::{Autoscaler, ScalingCommand, SystemState};

/// The purely reactive strategy: never pre-create anything; every query
/// triggers a cold start. Equivalent to a Backup Pool of size 0 and used as
/// the denominator of the paper's `relative_cost`.
#[derive(Debug, Clone, Default)]
pub struct Reactive;

impl Reactive {
    /// Create the reactive policy.
    pub fn new() -> Self {
        Self
    }
}

impl Autoscaler for Reactive {
    fn name(&self) -> &str {
        "reactive"
    }
}

/// Backup Pool (BP): keep a constant pool of `size` warm instances; when a
/// query consumes one, immediately create a replacement.
#[derive(Debug, Clone)]
pub struct BackupPool {
    size: usize,
}

impl BackupPool {
    /// Create a Backup Pool policy with the given pool size.
    pub fn new(size: usize) -> Self {
        Self { size }
    }

    /// The configured pool size.
    pub fn size(&self) -> usize {
        self.size
    }
}

impl Autoscaler for BackupPool {
    fn name(&self) -> &str {
        "backup-pool"
    }

    fn on_start(&mut self, _now: f64) -> Vec<ScalingCommand> {
        if self.size == 0 {
            Vec::new()
        } else {
            vec![ScalingCommand::CreateNow(self.size)]
        }
    }

    fn on_query_arrival(&mut self, state: &SystemState) -> Vec<ScalingCommand> {
        // Replenish the pool back to the target size.
        let current = state.idle_ready + state.idle_pending;
        if current < self.size {
            vec![ScalingCommand::CreateNow(self.size - current)]
        } else {
            Vec::new()
        }
    }
}

/// Adaptive Backup Pool (AdapBP): every `adjustment_interval` seconds the
/// pool size is reset to `ratio × (average QPS over the most recent ten
/// minutes)`, rounded up.
#[derive(Debug, Clone)]
pub struct AdaptiveBackupPool {
    ratio: f64,
    adjustment_interval: f64,
    estimation_window: f64,
    current_target: usize,
}

impl AdaptiveBackupPool {
    /// Create an AdapBP policy with the paper's defaults: the pool target is
    /// re-estimated every ten minutes from the last ten minutes of traffic.
    pub fn new(ratio: f64) -> Self {
        Self::with_windows(ratio, 600.0, 600.0)
    }

    /// Create an AdapBP policy with custom adjustment/estimation windows.
    pub fn with_windows(ratio: f64, adjustment_interval: f64, estimation_window: f64) -> Self {
        Self {
            ratio: ratio.max(0.0),
            adjustment_interval: adjustment_interval.max(1.0),
            estimation_window: estimation_window.max(1.0),
            current_target: 0,
        }
    }

    /// The multiplier applied to the estimated QPS.
    pub fn ratio(&self) -> f64 {
        self.ratio
    }

    /// The current pool-size target.
    pub fn current_target(&self) -> usize {
        self.current_target
    }
}

impl Autoscaler for AdaptiveBackupPool {
    fn name(&self) -> &str {
        "adaptive-backup-pool"
    }

    fn planning_interval(&self) -> Option<f64> {
        Some(self.adjustment_interval)
    }

    fn on_planning_tick(&mut self, state: &SystemState) -> Vec<ScalingCommand> {
        let qps = state.recent_qps(self.estimation_window);
        self.current_target = (qps * self.ratio).ceil() as usize;
        let current = state.idle_ready + state.idle_pending;
        if current < self.current_target {
            vec![ScalingCommand::CreateNow(self.current_target - current)]
        } else if current > self.current_target {
            vec![ScalingCommand::ScaleIn(current - self.current_target)]
        } else {
            Vec::new()
        }
    }

    fn on_query_arrival(&mut self, state: &SystemState) -> Vec<ScalingCommand> {
        // Like BP, immediately replace the instance consumed by this query,
        // but never exceed the adaptive target.
        let current = state.idle_ready + state.idle_pending;
        if current < self.current_target {
            vec![ScalingCommand::CreateNow(1)]
        } else {
            Vec::new()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{PendingTimeDistribution, SimulationConfig, Simulator};
    use crate::trace::{Query, Trace};

    fn bursty_trace() -> Trace {
        // Quiet first hour (1 query / 200 s), busy second hour (1 query / 5 s).
        let mut queries = Vec::new();
        let mut t = 0.0;
        while t < 3600.0 {
            queries.push(Query {
                arrival: t,
                processing: 3.0,
            });
            t += 200.0;
        }
        while t < 7200.0 {
            queries.push(Query {
                arrival: t,
                processing: 3.0,
            });
            t += 5.0;
        }
        Trace::new("bursty", queries).unwrap()
    }

    fn sim(seed: u64) -> Simulator {
        Simulator::new(SimulationConfig {
            pending: PendingTimeDistribution::Deterministic(13.0),
            seed,
            recent_history_window: 600.0,
        })
        .unwrap()
    }

    #[test]
    fn reactive_and_pool_names() {
        assert_eq!(Reactive::new().name(), "reactive");
        assert_eq!(BackupPool::new(3).name(), "backup-pool");
        assert_eq!(BackupPool::new(3).size(), 3);
        let adap = AdaptiveBackupPool::new(30.0);
        assert_eq!(adap.name(), "adaptive-backup-pool");
        assert_eq!(adap.ratio(), 30.0);
        assert_eq!(adap.current_target(), 0);
    }

    #[test]
    fn larger_pools_trade_cost_for_hits() {
        let trace = bursty_trace();
        let simulator = sim(1);
        let mut previous_cost = 0.0;
        let mut previous_hit = -1.0;
        for &size in &[0usize, 2, 8] {
            let mut policy = BackupPool::new(size);
            let metrics = simulator.run(&trace, &mut policy).unwrap();
            assert!(
                metrics.total_cost() >= previous_cost,
                "cost should grow with pool size"
            );
            assert!(
                metrics.hit_rate() >= previous_hit,
                "hit rate should grow with pool size"
            );
            previous_cost = metrics.total_cost();
            previous_hit = metrics.hit_rate();
        }
    }

    #[test]
    fn adaptive_pool_tracks_traffic_level() {
        let trace = bursty_trace();
        let simulator = sim(2);
        let mut adap = AdaptiveBackupPool::new(40.0);
        let adap_metrics = simulator.run(&trace, &mut adap).unwrap();

        // A fixed pool sized for the busy hour wastes instances in the quiet
        // hour; AdapBP with a comparable peak size should cost less while
        // keeping a decent hit rate.
        let mut big_fixed = BackupPool::new(8);
        let fixed_metrics = simulator.run(&trace, &mut big_fixed).unwrap();
        assert!(
            adap_metrics.total_cost() < fixed_metrics.total_cost(),
            "adaptive {} vs fixed {}",
            adap_metrics.total_cost(),
            fixed_metrics.total_cost()
        );
        // And it clearly beats reactive on hit rate in the busy hour.
        let mut reactive = Reactive::new();
        let reactive_metrics = simulator.run(&trace, &mut reactive).unwrap();
        assert!(adap_metrics.hit_rate() > reactive_metrics.hit_rate() + 0.2);
    }

    #[test]
    fn adaptive_pool_scales_in_when_traffic_drops() {
        // Busy first, then quiet: the pool must shrink.
        let mut queries = Vec::new();
        let mut t = 0.0;
        while t < 1800.0 {
            queries.push(Query {
                arrival: t,
                processing: 2.0,
            });
            t += 5.0;
        }
        while t < 7200.0 {
            queries.push(Query {
                arrival: t,
                processing: 2.0,
            });
            t += 400.0;
        }
        let trace = Trace::new("declining", queries).unwrap();
        let simulator = sim(3);
        let mut adap = AdaptiveBackupPool::new(50.0);
        let metrics = simulator.run(&trace, &mut adap).unwrap();
        // Scale-ins show up as unused instances deleted before the end.
        let scaled_in = metrics
            .instances
            .iter()
            .filter(|i| !i.served_query && i.deleted_at < trace.end() - 1.0)
            .count();
        assert!(scaled_in > 0, "expected scale-in events");
    }

    #[test]
    fn ratio_zero_adapbp_behaves_reactively() {
        let trace = bursty_trace();
        let simulator = sim(4);
        let mut adap = AdaptiveBackupPool::new(0.0);
        let metrics = simulator.run(&trace, &mut adap).unwrap();
        let mut reactive = Reactive::new();
        let reactive_metrics = simulator.run(&trace, &mut reactive).unwrap();
        assert_eq!(metrics.hit_rate(), reactive_metrics.hit_rate());
        assert!((metrics.total_cost() - reactive_metrics.total_cost()).abs() < 1e-9);
    }
}
