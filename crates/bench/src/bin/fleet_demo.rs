//! Multi-tenant fleet serving demo: rounds/sec at fleet scale, plus durable
//! checkpoint/restore.
//!
//! Builds a [`TenantFleet`] of N independent tenants (each with its own
//! model, ring and RNG), runs a stretch of planning rounds, and reports the
//! sustained planning throughput — total rounds/sec and tenant-rounds/sec —
//! for the serial (1 worker) and parallel (all cores) cases, plus a
//! determinism check that the two produce identical plans.
//!
//! Flags:
//!
//! * `--checkpoint-dir <dir>` — checkpoint the fleet mid-run, restore it
//!   into a fresh fleet, and verify the restored fleet's remaining rounds
//!   are bit-identical to the uninterrupted run (the checkpoint stays on
//!   disk for a later `--restore`);
//! * `--restore` — start from the checkpoint in `--checkpoint-dir` instead
//!   of building a warm fleet;
//! * `--json <path>` — dump the run report as JSON.
//!
//! Environment knobs: `FLEET_TENANTS` (default 250), `FLEET_ROUNDS`
//! (default 20), `FLEET_SAMPLES` (Monte Carlo R, default 250).

use robustscaler_core::{RobustScalerConfig, RobustScalerVariant};
use robustscaler_nhpp::NhppModel;
use robustscaler_online::{OnlineConfig, TenantFleet};
use robustscaler_parallel::available_threads;
use serde::Serialize;
use std::time::Instant;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// One timed stretch of rounds.
#[derive(Debug, Clone, Serialize)]
struct RunReport {
    workers: usize,
    wall_secs: f64,
    tenant_rounds_per_sec: f64,
    decisions: usize,
}

/// Checkpoint/restore measurements and the kill-and-restore verdict.
#[derive(Debug, Clone, Serialize)]
struct CheckpointReport {
    dir: String,
    generation: u64,
    shards: usize,
    tenant_count: usize,
    write_secs: f64,
    restore_secs: f64,
    identical_after_restore: bool,
}

/// The demo's full JSON report (`--json <path>`).
#[derive(Debug, Clone, Serialize)]
struct DemoReport {
    tenants: usize,
    rounds: usize,
    monte_carlo_samples: usize,
    restored_from_checkpoint: bool,
    runs: Vec<RunReport>,
    determinism_across_workers: bool,
    checkpoint: Option<CheckpointReport>,
}

fn fleet_config(samples: usize) -> OnlineConfig {
    let mut pipeline =
        RobustScalerConfig::for_variant(RobustScalerVariant::HittingProbability { target: 0.9 });
    pipeline.planning_interval = 10.0;
    pipeline.monte_carlo_samples = samples;
    pipeline.mean_processing = 20.0;
    OnlineConfig::new(pipeline)
}

/// A fleet whose tenants are warm-started with a diurnal-ish model so every
/// round exercises the full forecast → plan path without paying ADMM
/// training inside the timed loop.
fn build_fleet(tenants: usize, samples: usize, seed: u64) -> TenantFleet {
    let config = fleet_config(samples);
    let mut fleet = TenantFleet::new(&config, 0.0, tenants, seed).expect("valid fleet");
    for index in 0..tenants {
        // Tenant traffic levels spread over [0.5, 2.5] QPS with a mild
        // sinusoidal daily profile — ~50 arrivals per 10 s window at the
        // top end, the Fig. 8 bench shape.
        let base = 0.5 + 2.0 * (index as f64 / tenants.max(2) as f64);
        let log_rates: Vec<f64> = (0..1_440)
            .map(|b| (base * (1.0 + 0.3 * (b as f64 / 1_440.0 * std::f64::consts::TAU).sin())).ln())
            .collect();
        let model = NhppModel::from_log_rates(0.0, 60.0, log_rates, Some(1_440)).expect("model");
        fleet
            .tenant_mut(index)
            .expect("index in range")
            .scaler
            .install_model(model, 0.0)
            .expect("install");
    }
    fleet
}

/// Run `rounds` planning rounds starting at round index `first_round`,
/// returning (wall seconds, decision count, per-round first-creation
/// fingerprints for determinism comparison).
fn run_rounds(
    fleet: &mut TenantFleet,
    first_round: usize,
    rounds: usize,
) -> (f64, usize, Vec<Vec<f64>>) {
    let interval = 10.0;
    let mut decisions = 0usize;
    let mut plans = Vec::with_capacity(rounds);
    let started = Instant::now();
    for round in first_round..first_round + rounds {
        let now = 86_400.0 + interval * round as f64;
        let round_plans: Vec<_> = fleet
            .run_round_uniform(now, round % 3)
            .expect("round succeeds")
            .into_iter()
            .map(|plan| plan.expect("warm-started tenant plans"))
            .collect();
        decisions += round_plans.iter().map(|p| p.decisions.len()).sum::<usize>();
        plans.push(
            round_plans
                .iter()
                .map(|p| p.decisions.first().map_or(f64::NAN, |d| d.creation_time))
                .collect(),
        );
    }
    (started.elapsed().as_secs_f64(), decisions, plans)
}

fn plans_equal(a: &[Vec<f64>], b: &[Vec<f64>]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b.iter()).all(|(x, y)| {
            x.len() == y.len()
                && x.iter()
                    .zip(y.iter())
                    .all(|(p, q)| (p.is_nan() && q.is_nan()) || p == q)
        })
}

/// Kill-and-restore check: checkpoint `fleet` to `dir`, restore a fresh
/// fleet from disk, run the same remaining rounds on both, and compare.
fn checkpoint_and_verify(
    fleet: &mut TenantFleet,
    config: &OnlineConfig,
    dir: &str,
    first_round: usize,
    rounds: usize,
) -> CheckpointReport {
    let started = Instant::now();
    let manifest = fleet.checkpoint(dir).expect("checkpoint succeeds");
    let write_secs = started.elapsed().as_secs_f64();
    let started = Instant::now();
    let mut restored = TenantFleet::restore(dir, config).expect("restore succeeds");
    let restore_secs = started.elapsed().as_secs_f64();
    let (_, _, live_plans) = run_rounds(fleet, first_round, rounds);
    let (_, _, restored_plans) = run_rounds(&mut restored, first_round, rounds);
    CheckpointReport {
        dir: dir.to_string(),
        generation: manifest.generation,
        shards: manifest.shards.len(),
        tenant_count: manifest.tenant_count,
        write_secs,
        restore_secs,
        identical_after_restore: plans_equal(&live_plans, &restored_plans),
    }
}

fn main() {
    let tenants = env_usize("FLEET_TENANTS", 250);
    let rounds = env_usize("FLEET_ROUNDS", 20);
    let samples = env_usize("FLEET_SAMPLES", 250);
    let cores = available_threads();

    let mut checkpoint_dir: Option<String> = None;
    let mut restore = false;
    let mut json_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--checkpoint-dir" => {
                checkpoint_dir = Some(args.next().expect("--checkpoint-dir needs a path"));
            }
            "--restore" => restore = true,
            "--json" => json_path = Some(args.next().expect("--json needs a path")),
            other => {
                eprintln!("unknown flag `{other}` (expected --checkpoint-dir/--restore/--json)");
                std::process::exit(2);
            }
        }
    }
    if restore && checkpoint_dir.is_none() {
        eprintln!("--restore requires --checkpoint-dir");
        std::process::exit(2);
    }

    let config = fleet_config(samples);
    println!(
        "Fleet serving demo — {tenants} tenants, {rounds} rounds, R = {samples}, {cores} core(s)"
    );

    let build = |seed: u64| -> TenantFleet {
        if restore {
            let dir = checkpoint_dir.as_deref().expect("checked above");
            let fleet = TenantFleet::restore(dir, &config).expect("restore succeeds");
            println!("restored {} tenants from {dir}", fleet.len());
            fleet
        } else {
            build_fleet(tenants, samples, seed)
        }
    };

    let mut serial_fleet = build(7);
    let tenants = serial_fleet.len();
    serial_fleet.set_workers(1);
    let (serial_secs, serial_decisions, serial_plans) = run_rounds(&mut serial_fleet, 0, rounds);

    let mut parallel_fleet = build(7);
    parallel_fleet.set_workers(cores);
    let (parallel_secs, parallel_decisions, parallel_plans) =
        run_rounds(&mut parallel_fleet, 0, rounds);

    let tenant_rounds = (tenants * rounds) as f64;
    println!(
        "\n{:>12} {:>14} {:>18} {:>14}",
        "workers", "wall (s)", "tenant-rounds/s", "decisions"
    );
    println!(
        "{:>12} {:>14.3} {:>18.1} {:>14}",
        1,
        serial_secs,
        tenant_rounds / serial_secs,
        serial_decisions
    );
    println!(
        "{:>12} {:>14.3} {:>18.1} {:>14}",
        cores,
        parallel_secs,
        tenant_rounds / parallel_secs,
        parallel_decisions
    );

    let identical =
        serial_decisions == parallel_decisions && plans_equal(&serial_plans, &parallel_plans);
    println!(
        "\ndeterminism across worker counts: {}",
        if identical { "IDENTICAL" } else { "MISMATCH" }
    );

    // Kill-and-restore: checkpoint the parallel fleet after its timed
    // stretch, restore from disk, and verify the next rounds match the
    // fleet that never stopped.
    let checkpoint = checkpoint_dir.as_deref().map(|dir| {
        let report = checkpoint_and_verify(&mut parallel_fleet, &config, dir, rounds, 3);
        println!(
            "checkpoint: gen {} ({} shards, {} tenants) written in {:.3} s, \
             restored in {:.3} s — continuation {}",
            report.generation,
            report.shards,
            report.tenant_count,
            report.write_secs,
            report.restore_secs,
            if report.identical_after_restore {
                "IDENTICAL"
            } else {
                "MISMATCH"
            }
        );
        report
    });
    let checkpoint_ok = checkpoint
        .as_ref()
        .is_none_or(|c| c.identical_after_restore);

    if let Some(path) = json_path {
        let report = DemoReport {
            tenants,
            rounds,
            monte_carlo_samples: samples,
            restored_from_checkpoint: restore,
            runs: vec![
                RunReport {
                    workers: 1,
                    wall_secs: serial_secs,
                    tenant_rounds_per_sec: tenant_rounds / serial_secs,
                    decisions: serial_decisions,
                },
                RunReport {
                    workers: cores,
                    wall_secs: parallel_secs,
                    tenant_rounds_per_sec: tenant_rounds / parallel_secs,
                    decisions: parallel_decisions,
                },
            ],
            determinism_across_workers: identical,
            checkpoint,
        };
        let json = serde_json::to_string(&report).expect("serializable report");
        std::fs::write(&path, json).expect("writable json path");
        println!("report written to {path}");
    }

    if !identical || !checkpoint_ok {
        std::process::exit(1);
    }
}
