//! Multi-tenant fleet serving demo: rounds/sec at fleet scale.
//!
//! Builds a [`TenantFleet`] of N independent tenants (each with its own
//! model, ring and RNG), runs a stretch of planning rounds, and reports the
//! sustained planning throughput — total rounds/sec and tenant-rounds/sec —
//! for the serial (1 worker) and parallel (all cores) cases, plus a
//! determinism check that the two produce identical plans.
//!
//! Environment knobs: `FLEET_TENANTS` (default 250), `FLEET_ROUNDS`
//! (default 20), `FLEET_SAMPLES` (Monte Carlo R, default 250).

use robustscaler_core::{RobustScalerConfig, RobustScalerVariant};
use robustscaler_nhpp::NhppModel;
use robustscaler_online::{OnlineConfig, TenantFleet};
use robustscaler_parallel::available_threads;
use std::time::Instant;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// A fleet whose tenants are warm-started with a diurnal-ish model so every
/// round exercises the full forecast → plan path without paying ADMM
/// training inside the timed loop.
fn build_fleet(tenants: usize, samples: usize, seed: u64) -> TenantFleet {
    let mut pipeline =
        RobustScalerConfig::for_variant(RobustScalerVariant::HittingProbability { target: 0.9 });
    pipeline.planning_interval = 10.0;
    pipeline.monte_carlo_samples = samples;
    pipeline.mean_processing = 20.0;
    let config = OnlineConfig::new(pipeline);
    let mut fleet = TenantFleet::new(&config, 0.0, tenants, seed).expect("valid fleet");
    for index in 0..tenants {
        // Tenant traffic levels spread over [0.5, 2.5] QPS with a mild
        // sinusoidal daily profile — ~50 arrivals per 10 s window at the
        // top end, the Fig. 8 bench shape.
        let base = 0.5 + 2.0 * (index as f64 / tenants.max(2) as f64);
        let log_rates: Vec<f64> = (0..1_440)
            .map(|b| (base * (1.0 + 0.3 * (b as f64 / 1_440.0 * std::f64::consts::TAU).sin())).ln())
            .collect();
        let model = NhppModel::from_log_rates(0.0, 60.0, log_rates, Some(1_440)).expect("model");
        fleet
            .tenant_mut(index)
            .expect("index in range")
            .scaler
            .install_model(model, 0.0)
            .expect("install");
    }
    fleet
}

fn run_rounds(fleet: &mut TenantFleet, rounds: usize) -> (f64, usize, Vec<Vec<f64>>) {
    let interval = 10.0;
    let mut decisions = 0usize;
    let mut plans = Vec::with_capacity(rounds);
    let started = Instant::now();
    for round in 0..rounds {
        let now = 86_400.0 + interval * round as f64;
        let round_plans: Vec<_> = fleet
            .run_round_uniform(now, round % 3)
            .expect("round succeeds")
            .into_iter()
            .map(|plan| plan.expect("warm-started tenant plans"))
            .collect();
        decisions += round_plans.iter().map(|p| p.decisions.len()).sum::<usize>();
        plans.push(
            round_plans
                .iter()
                .map(|p| p.decisions.first().map_or(f64::NAN, |d| d.creation_time))
                .collect(),
        );
    }
    (started.elapsed().as_secs_f64(), decisions, plans)
}

fn main() {
    let tenants = env_usize("FLEET_TENANTS", 250);
    let rounds = env_usize("FLEET_ROUNDS", 20);
    let samples = env_usize("FLEET_SAMPLES", 250);
    let cores = available_threads();
    println!(
        "Fleet serving demo — {tenants} tenants, {rounds} rounds, R = {samples}, {cores} core(s)"
    );

    let mut serial_fleet = build_fleet(tenants, samples, 7);
    serial_fleet.set_workers(1);
    let (serial_secs, serial_decisions, serial_plans) = run_rounds(&mut serial_fleet, rounds);

    let mut parallel_fleet = build_fleet(tenants, samples, 7);
    parallel_fleet.set_workers(cores);
    let (parallel_secs, parallel_decisions, parallel_plans) =
        run_rounds(&mut parallel_fleet, rounds);

    let tenant_rounds = (tenants * rounds) as f64;
    println!(
        "\n{:>12} {:>14} {:>18} {:>14}",
        "workers", "wall (s)", "tenant-rounds/s", "decisions"
    );
    println!(
        "{:>12} {:>14.3} {:>18.1} {:>14}",
        1,
        serial_secs,
        tenant_rounds / serial_secs,
        serial_decisions
    );
    println!(
        "{:>12} {:>14.3} {:>18.1} {:>14}",
        cores,
        parallel_secs,
        tenant_rounds / parallel_secs,
        parallel_decisions
    );

    let identical = serial_decisions == parallel_decisions
        && serial_plans
            .iter()
            .zip(parallel_plans.iter())
            .all(|(a, b)| {
                a.iter()
                    .zip(b.iter())
                    .all(|(x, y)| (x.is_nan() && y.is_nan()) || x == y)
            });
    println!(
        "\ndeterminism across worker counts: {}",
        if identical { "IDENTICAL" } else { "MISMATCH" }
    );
    if !identical {
        std::process::exit(1);
    }
}
