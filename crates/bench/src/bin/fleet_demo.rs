//! Multi-tenant fleet serving demo: rounds/sec at fleet scale through the
//! event-driven ingestion runtime, plus durable checkpoint/restore.
//!
//! Builds a [`TenantFleet`] of N independent tenants (each with its own
//! model, ring and RNG) with an [`ArrivalBus`] attached, and runs a
//! stretch of planning rounds the way production would: a producer thread
//! enqueues the *next* window's arrivals **while the current round
//! plans**, the producer joins at the round boundary, and the next
//! round's workers drain the queues before planning. It reports the
//! sustained planning throughput — tenant-rounds/sec — for the serial
//! (1 worker) and parallel (all cores) cases, queue health (enqueued /
//! dropped-full / high-water / drained-per-round), and a determinism
//! check that both worker counts produce identical plans despite the
//! overlapped ingestion.
//!
//! Flags:
//!
//! * `--checkpoint-dir <dir>` — checkpoint the fleet mid-run (queued
//!   arrivals included), restore it into a fresh fleet, and verify the
//!   restored fleet's remaining rounds are bit-identical to the
//!   uninterrupted run (the checkpoint stays on disk for a later
//!   `--restore`);
//! * `--restore` — start from the checkpoint in `--checkpoint-dir` instead
//!   of building a warm fleet;
//! * `--record <path>` — record the parallel fleet's timed stretch (model
//!   installs, every round's arrivals/plans/refits, queue drains, final
//!   QoS) as a replayable JSONL trace; recording enqueues synchronously
//!   (no producer overlap) so the recorded queue contents are exact, and
//!   is rejected together with `--restore` (a restored fleet's history
//!   predates the trace);
//! * `--json <path>` — dump the run report as JSON (includes the trace
//!   path and record counts when recording, plus a `warnings` array that
//!   is non-empty whenever the run degraded: dropped arrivals, quarantined
//!   tenants, checkpoint retries or fallbacks);
//! * `--fault-*` — deterministic fault injection; faulted runs plan through
//!   the supervised round path (quarantine, backoff probes, sticky
//!   fallbacks) instead of failing outright (see `--help`).
//!
//! Environment knobs: `FLEET_TENANTS` (default 250), `FLEET_ROUNDS`
//! (default 20), `FLEET_SAMPLES` (Monte Carlo R, default 250),
//! `FLEET_SHARING` (0 = off, 1 = shared sampling only, 2 = shared
//! sampling + decision dedup + plan cache; default 0).

use robustscaler_core::{RobustScalerConfig, RobustScalerVariant};
use robustscaler_nhpp::NhppModel;
use robustscaler_online::{
    ArrivalBus, BusConfig, CheckpointIoStats, FaultPlan, FaultyStorage, OnlineConfig, QueueStats,
    SharingConfig, SupervisionStats, TenantFleet, TraceRecorder, TraceSummary,
};
use robustscaler_parallel::available_threads;
use serde::Serialize;
use std::sync::Arc;
use std::time::Instant;

const USAGE: &str = "\
Multi-tenant fleet serving demo: rounds/sec at fleet scale through the
event-driven ingestion runtime, plus durable checkpoint/restore.

USAGE: fleet_demo [FLAGS]

  --checkpoint-dir <dir>  checkpoint mid-run, restore, verify bit-identity
  --restore               start from the checkpoint in --checkpoint-dir
  --record <path>         record the parallel stretch as a JSONL trace
  --json <path>           dump the run report (with warnings) as JSON
  --help                  print this help

Deterministic fault injection (chaos mode). Every fault decision is a pure
function of --fault-seed and the (round, tenant) pair — same knobs, same
faults, bit-identical outcomes at any worker count. With any fault enabled
the demo plans through the supervised path: failing tenants are quarantined
with exponential-backoff probes and served their last good plan (sticky
fallback) while unhealthy. Probabilities are per tenant-round:

  --fault-seed <n>             fault-schedule seed (default 1337)
  --fault-plan-error <p>       probability planning fails with an injected error
  --fault-plan-panic <p>       probability planning panics inside the round worker
                               (caught; poisons only that tenant's slot)
  --fault-arrival-nan <p>      probability one drained arrival is corrupted to NaN
  --fault-clock-skew <p>       probability a drained batch is shifted in time
  --fault-clock-skew-secs <s>  signed skew magnitude in seconds (default 30)
  --fault-io <p>               per-file probability each checkpoint write fails
                               (writes retry with bounded backoff; high values
                               can exhaust the retries and fail the run)
  --fault-tenant <n>           restrict planning/arrival faults to tenant n

Environment: FLEET_TENANTS (default 250), FLEET_ROUNDS (default 20),
FLEET_SAMPLES (Monte Carlo R, default 250), FLEET_SHARING (0 = off,
1 = shared sampling only, 2 = + decision dedup + plan cache; default 0).";

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// One timed stretch of rounds.
#[derive(Debug, Clone, Serialize)]
struct RunReport {
    workers: usize,
    wall_secs: f64,
    tenant_rounds_per_sec: f64,
    decisions: usize,
}

/// Checkpoint/restore measurements and the kill-and-restore verdict.
#[derive(Debug, Clone, Serialize)]
struct CheckpointReport {
    dir: String,
    generation: u64,
    shards: usize,
    tenant_count: usize,
    write_secs: f64,
    restore_secs: f64,
    identical_after_restore: bool,
}

/// Cross-tenant sharing / plan-reuse counters of the parallel stretch.
#[derive(Debug, Clone, Serialize)]
struct SharingReport {
    /// The active policy.
    config: SharingConfig,
    /// Tenant-rounds planned against a shared cluster matrix.
    shared_planning_rounds: u64,
    /// Plan-group follower rounds that adopted the leader's schedule
    /// (Layer 1 decision dedup).
    deduped_plan_rounds: u64,
    /// Rounds served from the per-tenant plan cache (Layer 2).
    plan_cache_hits: u64,
}

/// Arrival-queue health of one timed stretch.
#[derive(Debug, Clone, Serialize)]
struct QueueReport {
    enqueued: u64,
    dropped_full: u64,
    queued_peak: u64,
    drained: u64,
    drained_per_round: f64,
}

impl QueueReport {
    fn from_stats(stats: QueueStats, rounds: usize) -> Self {
        Self {
            enqueued: stats.enqueued,
            dropped_full: stats.dropped_full,
            queued_peak: stats.queued_peak,
            drained: stats.drained,
            drained_per_round: if rounds == 0 {
                0.0
            } else {
                stats.drained as f64 / rounds as f64
            },
        }
    }
}

/// The demo's full JSON report (`--json <path>`).
#[derive(Debug, Clone, Serialize)]
struct DemoReport {
    tenants: usize,
    rounds: usize,
    monte_carlo_samples: usize,
    restored_from_checkpoint: bool,
    /// Arrivals are enqueued by a producer thread overlapped with the
    /// previous round's planning (the drain-at-round-boundary contract).
    ingest_overlapped: bool,
    runs: Vec<RunReport>,
    queue: Option<QueueReport>,
    determinism_across_workers: bool,
    /// Sharing / plan-reuse policy and counters, when `FLEET_SHARING` > 0.
    sharing: Option<SharingReport>,
    checkpoint: Option<CheckpointReport>,
    /// Recorded-session trace (`--record`): path plus record/round counts.
    trace: Option<TraceSummary>,
    /// The fault schedule when chaos mode is active (`--fault-*`).
    faults: Option<FaultPlan>,
    /// Supervision counters from the parallel stretch (chaos mode only).
    supervision: Option<SupervisionStats>,
    /// Degradation warnings: empty on a fully clean run, non-empty when
    /// arrivals were dropped, tenants were quarantined, or checkpoint I/O
    /// had to retry or fall back.
    warnings: Vec<String>,
}

/// Degradation warnings surfaced in the report and on stdout.
fn collect_warnings(
    queue: Option<&QueueReport>,
    supervision: Option<&SupervisionStats>,
    io: &CheckpointIoStats,
) -> Vec<String> {
    let mut warnings = Vec::new();
    if let Some(queue) = queue {
        if queue.dropped_full > 0 {
            warnings.push(format!(
                "arrival queue dropped {} batch(es) on the floor (queue full)",
                queue.dropped_full
            ));
        }
    }
    if let Some(sup) = supervision {
        if sup.failures > 0 {
            warnings.push(format!(
                "{} tenant-round(s) failed ({} by panic), {} served the degraded sticky fallback",
                sup.failures, sup.panics, sup.degraded_rounds
            ));
        }
        if sup.probes > 0 || sup.quarantined_now > 0 {
            warnings.push(format!(
                "{} tenant(s) quarantined right now; {} recovery probe(s) ran, {} succeeded",
                sup.quarantined_now, sup.probes, sup.recoveries
            ));
        }
    }
    if io.retries > 0 {
        warnings.push(format!(
            "checkpoint writes retried {} time(s) before succeeding",
            io.retries
        ));
    }
    if io.reuse_fallbacks > 0 {
        warnings.push(format!(
            "{} clean shard(s) fell back from incremental reuse to a full rewrite",
            io.reuse_fallbacks
        ));
    }
    if io.generation_fallbacks > 0 {
        warnings.push(format!(
            "{} restore(s) fell back past a corrupt generation",
            io.generation_fallbacks
        ));
    }
    warnings
}

fn fleet_config(samples: usize) -> OnlineConfig {
    let mut pipeline =
        RobustScalerConfig::for_variant(RobustScalerVariant::HittingProbability { target: 0.9 });
    pipeline.planning_interval = 10.0;
    pipeline.monte_carlo_samples = samples;
    pipeline.mean_processing = 20.0;
    OnlineConfig::new(pipeline)
}

/// A fleet whose tenants are warm-started with a diurnal-ish model so every
/// round exercises the full forecast → plan path without paying ADMM
/// training inside the timed loop, with the arrival bus attached.
fn build_fleet(tenants: usize, samples: usize, seed: u64) -> TenantFleet {
    let config = fleet_config(samples);
    let mut fleet = TenantFleet::new(&config, 0.0, tenants, seed).expect("valid fleet");
    fleet.attach_bus(BusConfig::default()).expect("fresh bus");
    for index in 0..tenants {
        // Tenant traffic levels spread over [0.5, 2.5] QPS with a mild
        // sinusoidal daily profile — ~50 arrivals per 10 s window at the
        // top end, the Fig. 8 bench shape.
        let base = 0.5 + 2.0 * (index as f64 / tenants.max(2) as f64);
        let log_rates: Vec<f64> = (0..1_440)
            .map(|b| (base * (1.0 + 0.3 * (b as f64 / 1_440.0 * std::f64::consts::TAU).sin())).ln())
            .collect();
        let model = NhppModel::from_log_rates(0.0, 60.0, log_rates, Some(1_440)).expect("model");
        fleet
            .tenant_mut(index)
            .expect("index in range")
            .scaler
            .install_model(model, 0.0)
            .expect("install");
    }
    fleet
}

/// Enqueue round `round`'s synthetic arrival window for every tenant — a
/// deterministic function of (round, tenant), so any two fleets fed the
/// same round sequence see identical queue contents regardless of when
/// (or from which thread) the enqueue ran.
fn enqueue_window(bus: &ArrivalBus, tenants: usize, round: usize) {
    let now = 86_400.0 + 10.0 * round as f64;
    for tenant in 0..tenants {
        let arrivals = [
            now + 1.0 + (tenant % 5) as f64,
            now + 4.5 + (tenant % 3) as f64,
            now + 8.0,
        ];
        bus.push_batch(tenant, &arrivals).expect("queue has room");
    }
}

/// Run `rounds` planning rounds starting at round index `first_round`,
/// overlapping each round's planning with the enqueue of the *next*
/// round's arrivals on a producer thread (joined at the round boundary,
/// so drains — and therefore plans — stay deterministic). Returns (wall
/// seconds, decision count, per-round first-creation fingerprints for
/// determinism comparison).
fn run_rounds(
    fleet: &mut TenantFleet,
    first_round: usize,
    rounds: usize,
) -> (f64, usize, Vec<Vec<f64>>) {
    run_rounds_with(fleet, first_round, rounds, false)
}

fn run_rounds_with(
    fleet: &mut TenantFleet,
    first_round: usize,
    rounds: usize,
    synchronous: bool,
) -> (f64, usize, Vec<Vec<f64>>) {
    let interval = 10.0;
    let tenants = fleet.len();
    let chaos = fleet.fault_plan().is_some();
    let bus = fleet.bus().cloned();
    let mut decisions = 0usize;
    let mut plans = Vec::with_capacity(rounds);
    let started = Instant::now();
    // Only a cold start (round 0) enqueues its window up front; a
    // continuation stretch already holds window `first_round` — the prior
    // stretch's trailing producer enqueued it (and a restored fleet got it
    // from the checkpoint), so enqueueing again would double-ingest the
    // boundary window.
    if first_round == 0 {
        if let Some(bus) = &bus {
            enqueue_window(bus, tenants, 0);
        }
    }
    for round in first_round..first_round + rounds {
        let now = 86_400.0 + interval * round as f64;
        // Recording mode enqueues the next window synchronously *after*
        // the round: a producer overlapped with the round's drain would
        // race the recorder's pre-drain queue capture. The queue contents
        // at every drain are identical either way — only wall clock moves.
        let producer = if synchronous {
            None
        } else {
            bus.as_ref().map(|bus| {
                let bus = Arc::clone(bus);
                std::thread::spawn(move || enqueue_window(&bus, tenants, round + 1))
            })
        };
        // Chaos mode plans through the supervised path: injected failures
        // quarantine their tenant and serve the sticky fallback instead of
        // aborting the demo. A clean run keeps the plain round (identical
        // plans, no supervision bookkeeping inside the timed loop).
        let round_plans: Vec<_> = if chaos {
            fleet
                .run_round_supervised(now, &vec![round % 3; tenants])
                .expect("supervised round succeeds")
                .outcomes
                .into_iter()
                .map(|outcome| outcome.plan)
                .collect()
        } else {
            fleet
                .run_round_uniform(now, round % 3)
                .expect("round succeeds")
                .into_iter()
                .map(|plan| Some(plan.expect("warm-started tenant plans")))
                .collect()
        };
        if let Some(producer) = producer {
            producer.join().expect("producer thread panicked");
        } else if let Some(bus) = &bus {
            enqueue_window(bus, tenants, round + 1);
        }
        decisions += round_plans
            .iter()
            .flatten()
            .map(|p| p.decisions.len())
            .sum::<usize>();
        plans.push(
            round_plans
                .iter()
                .map(|p| {
                    p.as_ref()
                        .and_then(|p| p.decisions.first())
                        .map_or(f64::NAN, |d| d.creation_time)
                })
                .collect(),
        );
    }
    (started.elapsed().as_secs_f64(), decisions, plans)
}

fn plans_equal(a: &[Vec<f64>], b: &[Vec<f64>]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b.iter()).all(|(x, y)| {
            x.len() == y.len()
                && x.iter()
                    .zip(y.iter())
                    .all(|(p, q)| (p.is_nan() && q.is_nan()) || p == q)
        })
}

/// Kill-and-restore check: checkpoint `fleet` to `dir`, restore a fresh
/// fleet from disk, run the same remaining rounds on both, and compare.
fn checkpoint_and_verify(
    fleet: &mut TenantFleet,
    config: &OnlineConfig,
    dir: &str,
    first_round: usize,
    rounds: usize,
) -> CheckpointReport {
    let started = Instant::now();
    let manifest = fleet.checkpoint(dir).expect("checkpoint succeeds");
    let write_secs = started.elapsed().as_secs_f64();
    let started = Instant::now();
    let mut restored = TenantFleet::restore(dir, config).expect("restore succeeds");
    let restore_secs = started.elapsed().as_secs_f64();
    // The fault schedule and supervision policy are runtime wiring, not
    // checkpoint state — the restored fleet must re-arm them or its
    // continuation rounds run fault-free and diverge from the live fleet.
    if let Some(plan) = fleet.fault_plan() {
        restored.set_faults(plan);
    }
    restored.set_supervisor(fleet.supervisor());
    let (_, _, live_plans) = run_rounds(fleet, first_round, rounds);
    let (_, _, restored_plans) = run_rounds(&mut restored, first_round, rounds);
    CheckpointReport {
        dir: dir.to_string(),
        generation: manifest.generation,
        shards: manifest.shards.len(),
        tenant_count: manifest.tenant_count,
        write_secs,
        restore_secs,
        identical_after_restore: plans_equal(&live_plans, &restored_plans),
    }
}

fn main() {
    let tenants = env_usize("FLEET_TENANTS", 250);
    let rounds = env_usize("FLEET_ROUNDS", 20);
    let samples = env_usize("FLEET_SAMPLES", 250);
    let sharing = match env_usize("FLEET_SHARING", 0) {
        0 => None,
        1 => Some(SharingConfig::sharing_only()),
        _ => Some(SharingConfig::on()),
    };
    let cores = available_threads();

    let mut checkpoint_dir: Option<String> = None;
    let mut restore = false;
    let mut json_path: Option<String> = None;
    let mut record_path: Option<String> = None;
    let mut faults = FaultPlan {
        seed: 1_337,
        ..FaultPlan::default()
    };
    let arg_f64 = |flag: &str, value: Option<String>| -> f64 {
        value.and_then(|v| v.parse().ok()).unwrap_or_else(|| {
            eprintln!("{flag} needs a numeric value");
            std::process::exit(2);
        })
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            "--checkpoint-dir" => {
                checkpoint_dir = Some(args.next().expect("--checkpoint-dir needs a path"));
            }
            "--restore" => restore = true,
            "--record" => record_path = Some(args.next().expect("--record needs a path")),
            "--json" => json_path = Some(args.next().expect("--json needs a path")),
            "--fault-seed" => faults.seed = arg_f64(&arg, args.next()) as u64,
            "--fault-plan-error" => faults.plan_error = arg_f64(&arg, args.next()),
            "--fault-plan-panic" => faults.plan_panic = arg_f64(&arg, args.next()),
            "--fault-arrival-nan" => faults.arrival_nan = arg_f64(&arg, args.next()),
            "--fault-clock-skew" => faults.clock_skew = arg_f64(&arg, args.next()),
            "--fault-clock-skew-secs" => faults.clock_skew_secs = arg_f64(&arg, args.next()),
            "--fault-io" => faults.checkpoint_io = arg_f64(&arg, args.next()),
            "--fault-tenant" => faults.target_tenant = Some(arg_f64(&arg, args.next()) as u64),
            other => {
                eprintln!("unknown flag `{other}` (see --help)");
                std::process::exit(2);
            }
        }
    }
    let chaos = faults.enabled();
    if restore && checkpoint_dir.is_none() {
        eprintln!("--restore requires --checkpoint-dir");
        std::process::exit(2);
    }
    if restore && record_path.is_some() {
        eprintln!("--record cannot be combined with --restore: a restored fleet's training history predates the trace, so the recording would not replay from its own header");
        std::process::exit(2);
    }

    let config = fleet_config(samples);
    println!(
        "Fleet serving demo — {tenants} tenants, {rounds} rounds, R = {samples}, {cores} core(s){}",
        if chaos {
            format!(" — chaos mode (fault seed {})", faults.seed)
        } else {
            String::new()
        }
    );

    let build = |seed: u64| -> TenantFleet {
        let mut fleet = if restore {
            let dir = checkpoint_dir.as_deref().expect("checked above");
            let fleet = TenantFleet::restore(dir, &config).expect("restore succeeds");
            println!("restored {} tenants from {dir}", fleet.len());
            fleet
        } else {
            build_fleet(tenants, samples, seed)
        };
        // The fault plan and supervision policy are runtime wiring, not
        // fleet state — applied to every fleet (restored ones included).
        if chaos {
            fleet.set_faults(faults);
        }
        // Sharing / plan reuse is runtime wiring too. Both the serial and
        // parallel fleet get it, so the worker-invariance check below
        // validates the sharing determinism contract as a side effect.
        if let Some(sharing) = sharing {
            fleet.set_sharing(sharing).expect("valid sharing config");
        }
        fleet
    };

    let mut serial_fleet = build(7);
    let tenants = serial_fleet.len();
    serial_fleet.set_workers(1);
    let (serial_secs, serial_decisions, serial_plans) = run_rounds(&mut serial_fleet, 0, rounds);

    let mut parallel_fleet = build(7);
    parallel_fleet.set_workers(cores);
    // Recording attaches *before* the timed stretch (per-tenant Install
    // records are emitted at attach, outside the timed loop) and detaches
    // after it, before the checkpoint phase's extra verification rounds.
    if let Some(path) = &record_path {
        let recorder = TraceRecorder::to_file(path, &parallel_fleet.trace_header(7))
            .expect("writable trace path");
        parallel_fleet
            .start_recording(recorder)
            .expect("fresh fleet starts recording");
    }
    let (parallel_secs, parallel_decisions, parallel_plans) =
        run_rounds_with(&mut parallel_fleet, 0, rounds, record_path.is_some());
    let trace = record_path.as_ref().map(|_| {
        let summary = parallel_fleet
            .finish_recording()
            .expect("trace finalizes")
            .expect("recording was active");
        println!(
            "trace: {} ({} records, {} rounds)",
            summary.path, summary.records, summary.rounds
        );
        summary
    });

    let tenant_rounds = (tenants * rounds) as f64;
    println!(
        "\n{:>12} {:>14} {:>18} {:>14}",
        "workers", "wall (s)", "tenant-rounds/s", "decisions"
    );
    println!(
        "{:>12} {:>14.3} {:>18.1} {:>14}",
        1,
        serial_secs,
        tenant_rounds / serial_secs,
        serial_decisions
    );
    println!(
        "{:>12} {:>14.3} {:>18.1} {:>14}",
        cores,
        parallel_secs,
        tenant_rounds / parallel_secs,
        parallel_decisions
    );

    let identical =
        serial_decisions == parallel_decisions && plans_equal(&serial_plans, &parallel_plans);
    println!(
        "\ndeterminism across worker counts: {}",
        if identical { "IDENTICAL" } else { "MISMATCH" }
    );

    let queue = parallel_fleet
        .queue_stats()
        .map(|stats| QueueReport::from_stats(stats, rounds));
    if let Some(queue) = &queue {
        println!(
            "queue health: {} enqueued, {} dropped (full), peak {} queued, \
             {:.1} drained/round",
            queue.enqueued, queue.dropped_full, queue.queued_peak, queue.drained_per_round
        );
    }

    let sharing_report = sharing.map(|config| {
        let stats = parallel_fleet.aggregate_stats();
        let report = SharingReport {
            config,
            shared_planning_rounds: stats.shared_planning_rounds,
            deduped_plan_rounds: parallel_fleet.deduped_plan_rounds(),
            plan_cache_hits: stats.plan_cache_hits,
        };
        println!(
            "plan reuse: {} shared tenant-rounds, {} deduped (adopted), {} plan-cache hits",
            report.shared_planning_rounds, report.deduped_plan_rounds, report.plan_cache_hits
        );
        report
    });

    let supervision = chaos.then(|| parallel_fleet.supervision_stats());
    if let Some(sup) = &supervision {
        println!(
            "supervision: {} failed tenant-rounds ({} panics), {} degraded, \
             {} probes / {} recoveries, {} quarantined now",
            sup.failures,
            sup.panics,
            sup.degraded_rounds,
            sup.probes,
            sup.recoveries,
            sup.quarantined_now
        );
    }

    // `--fault-io`: checkpoint writes go through the fault-injecting
    // storage backend; the store's bounded retries and full-rewrite
    // fallbacks absorb the failures (and show up as warnings below).
    if faults.checkpoint_io > 0.0 {
        parallel_fleet.set_checkpoint_storage(Arc::new(FaultyStorage::new(faults)));
    }

    // Kill-and-restore: checkpoint the parallel fleet after its timed
    // stretch, restore from disk, and verify the next rounds match the
    // fleet that never stopped.
    let checkpoint = checkpoint_dir.as_deref().map(|dir| {
        let report = checkpoint_and_verify(&mut parallel_fleet, &config, dir, rounds, 3);
        println!(
            "checkpoint: gen {} ({} shards, {} tenants) written in {:.3} s, \
             restored in {:.3} s — continuation {}",
            report.generation,
            report.shards,
            report.tenant_count,
            report.write_secs,
            report.restore_secs,
            if report.identical_after_restore {
                "IDENTICAL"
            } else {
                "MISMATCH"
            }
        );
        report
    });
    let checkpoint_ok = checkpoint
        .as_ref()
        .is_none_or(|c| c.identical_after_restore);

    let warnings = collect_warnings(
        queue.as_ref(),
        supervision.as_ref(),
        &parallel_fleet.checkpoint_io_stats(),
    );
    for warning in &warnings {
        println!("warning: {warning}");
    }

    if let Some(path) = json_path {
        let report = DemoReport {
            tenants,
            rounds,
            monte_carlo_samples: samples,
            restored_from_checkpoint: restore,
            ingest_overlapped: queue.is_some(),
            queue,
            runs: vec![
                RunReport {
                    workers: 1,
                    wall_secs: serial_secs,
                    tenant_rounds_per_sec: tenant_rounds / serial_secs,
                    decisions: serial_decisions,
                },
                RunReport {
                    workers: cores,
                    wall_secs: parallel_secs,
                    tenant_rounds_per_sec: tenant_rounds / parallel_secs,
                    decisions: parallel_decisions,
                },
            ],
            determinism_across_workers: identical,
            sharing: sharing_report,
            checkpoint,
            trace,
            faults: chaos.then_some(faults),
            supervision,
            warnings,
        };
        let json = serde_json::to_string(&report).expect("serializable report");
        std::fs::write(&path, json).expect("writable json path");
        println!("report written to {path}");
    }

    if !identical || !checkpoint_ok {
        std::process::exit(1);
    }
}
