//! Table II: response-time quantiles (75 / 95 / 99 / 99.9%) on the CRS-like
//! workload with and without missing-data injection into the training trace.
//!
//! The paper's point: the quantiles barely move, i.e. the pipeline is robust
//! to a whole missing day of training data.

use robustscaler_bench::sweep::{run_policy_spec, PolicySpec};
use robustscaler_bench::workloads::{crs_workload, scale_from_env, Workload};
use robustscaler_traces::remove_day;

const LEVELS: [f64; 4] = [0.75, 0.95, 0.99, 0.999];

fn quantile_row(workload: &Workload, spec: PolicySpec) -> Vec<f64> {
    let (_, metrics) = run_policy_spec(workload, spec, 30.0, 200);
    metrics.rt_quantiles(&LEVELS).expect("non-empty metrics")
}

fn main() {
    let scale = scale_from_env(0.25);
    println!("Table II reproduction — RT quantiles with/without missing data (scale {scale})");
    let base = crs_workload(scale);
    let missing = Workload {
        train: remove_day(&base.train, 6),
        ..base.clone()
    };

    println!(
        "\n{:<12} {:<28} {:>9} {:>9} {:>9} {:>9}",
        "quantile", "configuration", "75%", "95%", "99%", "99.9%"
    );
    for (name, spec) in [
        ("RS-HP(0.9)", PolicySpec::RobustScalerHp(0.9)),
        ("RS-cost(215)", PolicySpec::RobustScalerCost(215.0)),
    ] {
        eprintln!("  running {name} without missing data ...");
        let without = quantile_row(&base, spec);
        eprintln!("  running {name} with missing data ...");
        let with = quantile_row(&missing, spec);
        println!(
            "{:<12} {:<28} {:>9.1} {:>9.1} {:>9.1} {:>9.1}",
            name, "w/o missing", without[0], without[1], without[2], without[3]
        );
        println!(
            "{:<12} {:<28} {:>9.1} {:>9.1} {:>9.1} {:>9.1}",
            name, "w/ missing", with[0], with[1], with[2], with[3]
        );
    }
    println!(
        "\nExpected shape (paper Table II): each pair of rows is nearly identical\n\
         at every quantile level."
    );
}
