//! Table IV: RobustScaler-HP in a simulated versus "real" environment.
//!
//! The paper deploys on an Alibaba Serverless Kubernetes cluster; per the
//! substitution documented in DESIGN.md, the "real" environment here is the
//! same event simulator but with the measured wall-clock latency of every
//! planning round charged against the schedule (decisions only take effect
//! after they have been computed). If the two rows are close, the decision
//! computation is fast enough not to disturb the scaling process — the
//! paper's conclusion.

use robustscaler_bench::workloads::{crs_workload, scale_from_env};
use robustscaler_core::{
    evaluate_policy, RobustScalerConfig, RobustScalerPipeline, RobustScalerVariant,
};

fn main() {
    let scale = scale_from_env(0.25);
    println!("Table IV reproduction — simulated vs real environment (scale {scale})");
    let workload = crs_workload(scale);

    let run = |charge_latency: bool| {
        let mut config = RobustScalerConfig::for_variant(RobustScalerVariant::HittingProbability {
            target: 0.9,
        });
        config.mean_processing = workload.mean_processing;
        config.planning_interval = 30.0;
        config.monte_carlo_samples = 500;
        config.charge_compute_latency = charge_latency;
        let mut policy = RobustScalerPipeline::new(config)
            .expect("valid configuration")
            .build_policy(&workload.train)
            .expect("training succeeds");
        let (result, metrics) = evaluate_policy(&workload.test, &mut policy, workload.sim).unwrap();
        let per_round_ms =
            1_000.0 * policy.compute_seconds() / policy.planning_rounds().max(1) as f64;
        (result, metrics.cost_per_query(), per_round_ms)
    };

    let (simulated, simulated_cost, _) = run(false);
    let (real, real_cost, per_round_ms) = run(true);

    println!(
        "\n{:<12} {:>8} {:>10} {:>16}",
        "environment", "HP", "RT (s)", "cost/query (s)"
    );
    println!(
        "{:<12} {:>8.2} {:>10.1} {:>16.1}",
        "simulated", simulated.hit_rate, simulated.rt_avg, simulated_cost
    );
    println!(
        "{:<12} {:>8.2} {:>10.1} {:>16.1}",
        "real", real.hit_rate, real.rt_avg, real_cost
    );
    println!(
        "\nmean decision-computation latency charged: {per_round_ms:.2} ms per planning round"
    );
    println!(
        "\nExpected shape (paper Table IV): the two rows are close (HP 0.80 vs\n\
         0.83, RT 181 vs 189 s, cost 240 vs 229 s in the paper) because the\n\
         optimizer runs in milliseconds."
    );
}
