//! Figure 6: average response time vs relative cost under growing
//! perturbations of the CRS-like trace (c = 1, 2, 4, 6), comparing AdapBP
//! and RobustScaler-HP.
//!
//! The perturbation follows §VII-B1: every hour a five-minute window of
//! queries is deleted (starting at the top of the hour) and, starting at the
//! sixth minute, another five-minute window receives `c` extra copies of its
//! queries.

use robustscaler_bench::sweep::{print_table, run_policy_spec, ParetoPoint, PolicySpec};
use robustscaler_bench::workloads::{crs_workload, scale_from_env, Workload};
use robustscaler_traces::{amplify_windows, delete_windows};

/// Apply the paper's perturbation of size `c` to both halves of a workload.
pub fn perturb_workload(base: &Workload, c: usize) -> Workload {
    let perturb = |trace: &robustscaler_simulator::Trace| {
        let deleted = delete_windows(trace, 3_600.0, 0.0, 300.0);
        amplify_windows(&deleted, 3_600.0, 360.0, 300.0, c, 97)
    };
    Workload {
        name: base.name,
        train: perturb(&base.train),
        test: perturb(&base.test),
        mean_processing: base.mean_processing,
        sim: base.sim,
    }
}

fn main() {
    let scale = scale_from_env(0.25);
    println!("Figure 6 reproduction — rt_avg vs relative_cost under perturbations (scale {scale})");
    let base = crs_workload(scale);
    let specs = [
        PolicySpec::AdaptiveBackupPool(50.0),
        PolicySpec::AdaptiveBackupPool(200.0),
        PolicySpec::AdaptiveBackupPool(600.0),
        PolicySpec::RobustScalerHp(0.5),
        PolicySpec::RobustScalerHp(0.8),
        PolicySpec::RobustScalerHp(0.95),
    ];
    for &c in &[1usize, 2, 4, 6] {
        let workload = perturb_workload(&base, c);
        let points: Vec<ParetoPoint> = specs
            .iter()
            .map(|&spec| {
                eprintln!("  c={c}: running {} ...", spec.label());
                run_policy_spec(&workload, spec, 30.0, 200).0
            })
            .collect();
        print_table(&format!("Fig. 6 — perturbation size c = {c}"), &points);
    }
    println!(
        "\nExpected shape (paper): as c grows, AdapBP's response time degrades\n\
         faster than RobustScaler-HP's, which closes the gap at low cost and\n\
         eventually dominates."
    );
}
