//! Figure 5: QoS stability — variance of windowed hit rate / response time
//! averages versus their means, on the CRS-like workload.
//!
//! Each policy is run at several trade-off settings; for every run the
//! response times (hit indicators) of every 50 consecutive queries are
//! averaged and the variance of those window means is reported against the
//! overall mean, exactly as described for Fig. 5.

use robustscaler_bench::sweep::{run_policy_specs, PolicySpec};
use robustscaler_bench::workloads::{crs_workload, scale_from_env};

fn main() {
    let scale = scale_from_env(0.25);
    println!("Figure 5 reproduction — QoS variance on the CRS-like workload (scale {scale})");
    let workload = crs_workload(scale);

    let specs = [
        PolicySpec::AdaptiveBackupPool(50.0),
        PolicySpec::AdaptiveBackupPool(200.0),
        PolicySpec::AdaptiveBackupPool(600.0),
        PolicySpec::RobustScalerHp(0.5),
        PolicySpec::RobustScalerHp(0.8),
        PolicySpec::RobustScalerHp(0.95),
        PolicySpec::RobustScalerRt(190.0),
        PolicySpec::RobustScalerRt(184.0),
        PolicySpec::RobustScalerCost(200.0),
        PolicySpec::RobustScalerCost(230.0),
    ];

    println!(
        "\n{:<22} {:>12} {:>14} {:>12} {:>14}",
        "policy", "mean_hit", "var(hit|50)", "mean_rt", "var(rt|50)"
    );
    // The policy evaluations are independent; fan them out across cores.
    for (point, _) in run_policy_specs(&workload, &specs, 30.0, 200) {
        println!(
            "{:<22} {:>12.3} {:>14.5} {:>12.1} {:>14.2}",
            point.label, point.hit_rate, point.hit_variance, point.rt_avg, point.rt_variance
        );
    }
    println!(
        "\nThe paper's Fig. 5 finding: at comparable mean QoS, RobustScaler-HP and\n\
         -RT show much smaller window-to-window variance than AdapBP, with\n\
         RobustScaler-cost in between."
    );
}
