//! Figure 3: QPS series of the three workloads at Δt = 60 s.
//!
//! The paper plots the raw QPS series; this binary prints per-trace summary
//! statistics plus an hourly QPS profile so the periodic structure, noise
//! level and spikes are visible in text form.

use robustscaler_bench::workloads::{
    alibaba_workload, crs_workload, google_workload, scale_from_env,
};
use robustscaler_simulator::Trace;
use robustscaler_timeseries::{detect_period, PeriodicityConfig, TimeSeries};

fn describe(name: &str, trace: &Trace) {
    let counts = TimeSeries::from_event_times(
        &trace.arrival_times(),
        trace.start(),
        trace.end() + 60.0,
        60.0,
    )
    .expect("non-empty trace");
    let qps = counts.to_rate();
    let values = qps.values_filled(0.0);
    let mean = robustscaler_stats::mean(&values);
    let max = values.iter().cloned().fold(0.0_f64, f64::max);
    let std = robustscaler_stats::std_dev(&values);

    let aggregated = counts.aggregate_mean(5).expect("window >= 1");
    let period = detect_period(&aggregated, &PeriodicityConfig::default())
        .ok()
        .flatten();

    println!("\ntrace: {name}");
    println!("  queries           : {}", trace.len());
    println!(
        "  duration          : {:.2} days",
        trace.duration() / 86_400.0
    );
    println!("  mean / max QPS    : {mean:.4} / {max:.3}");
    println!("  QPS std deviation : {std:.4}");
    match period {
        Some(p) => println!(
            "  detected period   : {} min (ACF {:.2})",
            p.period * 5,
            p.acf
        ),
        None => println!("  detected period   : none"),
    }
    // Hourly profile of the first 24 hours — the shape the paper plots.
    println!("  first-day hourly QPS profile:");
    for hour in 0..24 {
        let from = trace.start() + hour as f64 * 3_600.0;
        let to = from + 3_600.0;
        let count = trace
            .queries()
            .iter()
            .filter(|q| q.arrival >= from && q.arrival < to)
            .count();
        let bar_len = ((count as f64 / (3_600.0 * max.max(1e-9)) * 60.0).round() as usize).min(60);
        println!(
            "    h{hour:02} {:>8.4} {}",
            count as f64 / 3_600.0,
            "#".repeat(bar_len)
        );
    }
}

fn main() {
    let scale = scale_from_env(0.3);
    println!("Figure 3 reproduction — QPS series of the three traces (scale {scale})");
    let crs = crs_workload(scale);
    let alibaba = alibaba_workload(scale);
    let google = google_workload(scale);
    for (name, w) in [
        ("CRS-like", &crs),
        ("Alibaba-like", &alibaba),
        ("Google-like", &google),
    ] {
        // Describe the full trace (train + test are contiguous, so describe
        // both pieces by re-joining their spans through the training trace).
        describe(&format!("{name} (train)"), &w.train);
        describe(&format!("{name} (test)"), &w.test);
    }
}
