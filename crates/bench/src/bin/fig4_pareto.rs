//! Figure 4 (a–f): Pareto plots of hit rate / average response time versus
//! relative cost for BP, AdapBP and the three RobustScaler variants on the
//! three workloads.
//!
//! Each printed table corresponds to one pair of sub-figures (one workload);
//! a row is one point of the corresponding Pareto line.

use robustscaler_bench::sweep::{print_table, run_policy_specs, ParetoPoint, PolicySpec};
use robustscaler_bench::workloads::{
    alibaba_workload, crs_workload, google_workload, scale_from_env, Workload,
};

fn sweep(workload: &Workload, specs: &[PolicySpec]) -> Vec<ParetoPoint> {
    // The policy evaluations are independent; fan them out across cores.
    run_policy_specs(workload, specs, 30.0, 200)
        .into_iter()
        .map(|(point, _)| point)
        .collect()
}

fn main() {
    let scale = scale_from_env(0.25);
    println!("Figure 4 reproduction — Pareto sweeps (scale {scale})");

    // CRS-like: low traffic, pool sizes 0..4, RobustScaler targets spread
    // over the achievable range (the paper sweeps B ∈ [0, 8]).
    let crs = crs_workload(scale);
    let crs_points = sweep(
        &crs,
        &[
            PolicySpec::BackupPool(0),
            PolicySpec::BackupPool(1),
            PolicySpec::BackupPool(2),
            PolicySpec::BackupPool(4),
            PolicySpec::AdaptiveBackupPool(50.0),
            PolicySpec::AdaptiveBackupPool(200.0),
            PolicySpec::AdaptiveBackupPool(600.0),
            PolicySpec::RobustScalerHp(0.5),
            PolicySpec::RobustScalerHp(0.8),
            PolicySpec::RobustScalerHp(0.95),
            PolicySpec::RobustScalerRt(190.0),
            PolicySpec::RobustScalerRt(184.0),
            PolicySpec::RobustScalerCost(200.0),
            PolicySpec::RobustScalerCost(230.0),
        ],
    );
    print_table(
        "Fig. 4(a)/(b) — CRS-like: hit_rate & rt_avg vs relative_cost",
        &crs_points,
    );

    // Alibaba-like: higher traffic, larger pools.
    let alibaba = alibaba_workload(scale);
    let alibaba_points = sweep(
        &alibaba,
        &[
            PolicySpec::BackupPool(0),
            PolicySpec::BackupPool(2),
            PolicySpec::BackupPool(6),
            PolicySpec::BackupPool(12),
            PolicySpec::AdaptiveBackupPool(10.0),
            PolicySpec::AdaptiveBackupPool(30.0),
            PolicySpec::AdaptiveBackupPool(80.0),
            PolicySpec::RobustScalerHp(0.5),
            PolicySpec::RobustScalerHp(0.8),
            PolicySpec::RobustScalerHp(0.95),
            PolicySpec::RobustScalerRt(40.0),
            PolicySpec::RobustScalerRt(33.0),
            PolicySpec::RobustScalerCost(46.0),
            PolicySpec::RobustScalerCost(55.0),
        ],
    );
    print_table(
        "Fig. 4(c)/(d) — Alibaba-like: hit_rate & rt_avg vs relative_cost",
        &alibaba_points,
    );

    // Google-like.
    let google = google_workload(scale);
    let google_points = sweep(
        &google,
        &[
            PolicySpec::BackupPool(0),
            PolicySpec::BackupPool(1),
            PolicySpec::BackupPool(3),
            PolicySpec::BackupPool(6),
            PolicySpec::AdaptiveBackupPool(10.0),
            PolicySpec::AdaptiveBackupPool(40.0),
            PolicySpec::AdaptiveBackupPool(120.0),
            PolicySpec::RobustScalerHp(0.5),
            PolicySpec::RobustScalerHp(0.8),
            PolicySpec::RobustScalerHp(0.95),
            PolicySpec::RobustScalerRt(70.0),
            PolicySpec::RobustScalerRt(63.0),
            PolicySpec::RobustScalerCost(76.0),
            PolicySpec::RobustScalerCost(90.0),
        ],
    );
    print_table(
        "Fig. 4(e)/(f) — Google-like: hit_rate & rt_avg vs relative_cost",
        &google_points,
    );

    println!(
        "\nReading guide: within one table, compare rows at similar relative_cost.\n\
         The paper's qualitative claim is that the RobustScaler families sit\n\
         top-left of BP (higher hit_rate / lower rt_avg at equal cost), with\n\
         AdapBP competitive on CRS at low cost but less stable (see fig5)."
    );
}
