//! Figure 10(d): effect of the planning interval Δ.
//!
//! RobustScaler-HP is run with Δ from a few seconds up to several minutes at
//! a fixed target; the paper's finding is that less frequent planning needs
//! more cost to reach the same response time, because decisions are made
//! earlier with less information.

use robustscaler_bench::sweep::{run_policy_spec, PolicySpec};
use robustscaler_bench::workloads::{crs_workload, scale_from_env};

fn main() {
    let scale = scale_from_env(0.25);
    println!("Figure 10(d) reproduction — planning frequency sweep (scale {scale})");
    let workload = crs_workload(scale);

    println!(
        "\n{:>12} {:>10} {:>10} {:>14}",
        "Δ (s)", "hit_rate", "rt_avg", "relative_cost"
    );
    for &delta in &[5.0, 15.0, 30.0, 60.0, 120.0, 300.0] {
        eprintln!("  running Δ = {delta} ...");
        let (point, _) = run_policy_spec(&workload, PolicySpec::RobustScalerHp(0.9), delta, 200);
        println!(
            "{:>12.0} {:>10.3} {:>10.1} {:>14.3}",
            delta, point.hit_rate, point.rt_avg, point.relative_cost
        );
    }
    println!(
        "\nExpected shape (paper): as Δ grows the relative cost needed to hold the\n\
         same QoS level creeps upward (and/or the delivered QoS degrades),\n\
         because creations must be committed earlier under more uncertainty."
    );
}
