//! Closed-loop harness demo: replay a synthetic diurnal trace through the
//! full online serving loop (ingest → drift check → refit → plan →
//! simulated cluster) and report the paper's metrics.
//!
//! Flags:
//!
//! * `--restart-dir <dir>` — kill-and-restore replay: the serving process
//!   "dies" at the warm-up boundary, is checkpointed to `<dir>`, restored
//!   from disk, and must produce a bit-identical report to the
//!   uninterrupted run (the binary verifies this and fails on mismatch);
//! * `--record <path>` — record the session (warm-up, every round's
//!   arrivals/plans/refits, final QoS) as a replayable JSONL trace (see
//!   the `trace_replay` binary);
//! * `--json <path>` — dump the [`HarnessReport`] as JSON; when recording,
//!   the report is wrapped as `{"report": ..., "trace": ...}` so the trace
//!   path and record counts ride along.
//!
//! Environment knobs: `HARNESS_HOURS` (trace length, default 6),
//! `HARNESS_SCALE` (traffic scale, default 0.5).

use robustscaler_core::{RobustScalerConfig, RobustScalerVariant};
use robustscaler_online::{
    run_closed_loop, run_closed_loop_recorded, run_closed_loop_with_restart, HarnessConfig,
    HarnessReport, OnlineConfig, TraceSummary,
};
use robustscaler_simulator::{PendingTimeDistribution, SimulationConfig};
use robustscaler_traces::{google_like, ProcessingTimeModel, TraceConfig};
use serde::Serialize;

/// `--json` payload when `--record` is active: the report plus the trace.
#[derive(Debug, Clone, Serialize)]
struct RecordedReport {
    report: HarnessReport,
    trace: TraceSummary,
}

fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn print_report(report: &HarnessReport) {
    println!("policy:         {}", report.policy);
    println!("queries:        {}", report.queries);
    println!("hit rate:       {:.4}", report.hit_rate);
    println!("rt_avg:         {:.3} s", report.rt_avg);
    println!("relative cost:  {:.3}", report.relative_cost);
    println!(
        "serving:        {} refits ({} drift), {} planned / {} skipped / {} failed rounds",
        report.stats.refits,
        report.stats.drift_refits,
        report.stats.planning_rounds,
        report.stats.skipped_rounds,
        report.stats.failed_rounds
    );
    if let Some(queue) = &report.queue {
        println!(
            "ingest queue:   {} enqueued, {} dropped (full), peak {} queued, \
             {:.1} drained/round",
            queue.enqueued,
            queue.dropped_full,
            queue.queued_peak,
            report.drained_per_round.unwrap_or(0.0)
        );
    }
}

fn main() {
    let mut restart_dir: Option<String> = None;
    let mut json_path: Option<String> = None;
    let mut record_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--restart-dir" => {
                restart_dir = Some(args.next().expect("--restart-dir needs a path"));
            }
            "--record" => record_path = Some(args.next().expect("--record needs a path")),
            "--json" => json_path = Some(args.next().expect("--json needs a path")),
            other => {
                eprintln!("unknown flag `{other}` (expected --restart-dir/--record/--json)");
                std::process::exit(2);
            }
        }
    }

    let hours = env_f64("HARNESS_HOURS", 6.0);
    let trace = google_like(&TraceConfig {
        duration: hours * 3_600.0,
        traffic_scale: env_f64("HARNESS_SCALE", 0.5),
        processing: ProcessingTimeModel::Exponential { mean: 20.0 },
        seed: 424_242,
    });

    let mut pipeline =
        RobustScalerConfig::for_variant(RobustScalerVariant::HittingProbability { target: 0.9 });
    pipeline.mean_processing = 20.0;
    pipeline.monte_carlo_samples = 300;
    pipeline.planning_interval = 10.0;
    pipeline.admm.max_iterations = 80;
    pipeline.seed = 7;
    let config = HarnessConfig {
        online: OnlineConfig::new(pipeline),
        sim: SimulationConfig {
            pending: PendingTimeDistribution::Deterministic(13.0),
            seed: 9,
            recent_history_window: 600.0,
        },
        warmup: (hours / 2.0) * 3_600.0,
    };

    println!(
        "Closed-loop harness — {hours} h trace, {} h warm-up",
        hours / 2.0
    );
    let (report, trace_summary) = match &record_path {
        Some(path) => {
            let (report, _, summary) =
                run_closed_loop_recorded(&trace, &config, path).expect("recorded closed loop runs");
            (report, Some(summary))
        }
        None => {
            let (report, _) = run_closed_loop(&trace, &config).expect("closed loop runs");
            (report, None)
        }
    };
    print_report(&report);
    if let Some(summary) = &trace_summary {
        println!(
            "trace:          {} ({} records, {} rounds)",
            summary.path, summary.records, summary.rounds
        );
    }

    if let Some(dir) = restart_dir {
        let (restarted, _) =
            run_closed_loop_with_restart(&trace, &config, &dir).expect("restart replay runs");
        let identical = restarted == report;
        println!(
            "\nkill-and-restore replay via {dir}: {}",
            if identical { "IDENTICAL" } else { "MISMATCH" }
        );
        if !identical {
            std::process::exit(1);
        }
    }

    if let Some(path) = json_path {
        let json = match trace_summary {
            Some(trace) => serde_json::to_string(&RecordedReport { report, trace }),
            None => serde_json::to_string(&report),
        }
        .expect("serializable report");
        std::fs::write(&path, json).expect("writable json path");
        println!("report written to {path}");
    }
}
