//! Closed-loop harness demo: replay a synthetic diurnal trace through the
//! full online serving loop (ingest → drift check → refit → plan →
//! simulated cluster) and report the paper's metrics.
//!
//! Flags:
//!
//! * `--restart-dir <dir>` — kill-and-restore replay: the serving process
//!   "dies" at the warm-up boundary, is checkpointed to `<dir>`, restored
//!   from disk, and must produce a bit-identical report to the
//!   uninterrupted run (the binary verifies this and fails on mismatch);
//! * `--record <path>` — record the session (warm-up, every round's
//!   arrivals/plans/refits, final QoS) as a replayable JSONL trace (see
//!   the `trace_replay` binary);
//! * `--json <path>` — dump the run as JSON: `{"report": ..., "trace":
//!   ..., "warnings": [...]}` — `trace` carries the record counts when
//!   recording, and `warnings` is non-empty whenever the run degraded
//!   (dropped arrivals, failed planning rounds);
//! * `--fault-*` — deterministic fault injection (see `--help`).
//!
//! Environment knobs: `HARNESS_HOURS` (trace length, default 6),
//! `HARNESS_SCALE` (traffic scale, default 0.5), `HARNESS_PLAN_REUSE`
//! (plan-cache quantization, 0 = off, default 0 — e.g. 0.05 arms the
//! round-over-round plan cache so steady-state ticks between refits serve
//! time-shifted cached plans).

use robustscaler_core::{RobustScalerConfig, RobustScalerVariant};
use robustscaler_online::{
    run_closed_loop, run_closed_loop_recorded, run_closed_loop_with_restart, FaultPlan,
    HarnessConfig, HarnessReport, OnlineConfig, TraceSummary,
};
use robustscaler_simulator::{PendingTimeDistribution, SimulationConfig};
use robustscaler_traces::{google_like, ProcessingTimeModel, TraceConfig};
use serde::Serialize;

const USAGE: &str = "\
Closed-loop harness demo: replay a synthetic diurnal trace through the full
online serving loop (ingest -> drift check -> refit -> plan -> simulated
cluster) and report the paper's metrics.

USAGE: harness_demo [FLAGS]

  --restart-dir <dir>   kill-and-restore replay: checkpoint at the warm-up
                        boundary, restore from <dir>, verify bit-identity
  --record <path>       record the session as a replayable JSONL trace
  --json <path>         dump {report, trace, warnings} as JSON
  --help                print this help

Deterministic fault injection (chaos mode). Every fault decision is a pure
function of --fault-seed and the round index — two runs with the same knobs
inject the same faults at the same rounds, and a recorded chaos session
replays bit-for-bit. The warm-up phase is never faulted. Probabilities are
per planning round:

  --fault-seed <n>             fault-schedule seed (default 1337)
  --fault-plan-error <p>       probability planning fails with an injected error
  --fault-arrival-nan <p>      probability one drained arrival is corrupted to NaN
  --fault-clock-skew <p>       probability a drained batch is shifted in time
  --fault-clock-skew-secs <s>  signed skew magnitude in seconds (default 30)

Environment: HARNESS_HOURS (trace length, default 6), HARNESS_SCALE
(traffic scale, default 0.5), HARNESS_PLAN_REUSE (plan-cache quantization,
0 = off, default 0).";

/// `--json` payload: the report, the trace summary when recording, and the
/// degradation warnings (empty on a fully clean run).
#[derive(Debug, Clone, Serialize)]
struct DemoJson {
    report: HarnessReport,
    trace: Option<TraceSummary>,
    warnings: Vec<String>,
}

/// Degradation warnings: non-empty whenever the run was not fully clean.
fn collect_warnings(report: &HarnessReport, faulted: bool) -> Vec<String> {
    let mut warnings = Vec::new();
    if let Some(queue) = &report.queue {
        if queue.dropped_full > 0 {
            warnings.push(format!(
                "arrival queue dropped {} batch(es) on the floor (queue full)",
                queue.dropped_full
            ));
        }
    }
    if report.stats.failed_rounds > 0 {
        warnings.push(format!(
            "{} planning round(s) failed{}",
            report.stats.failed_rounds,
            if faulted {
                " (deterministic fault injection active)"
            } else {
                ""
            }
        ));
    }
    warnings
}

fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn print_report(report: &HarnessReport) {
    println!("policy:         {}", report.policy);
    println!("queries:        {}", report.queries);
    println!("hit rate:       {:.4}", report.hit_rate);
    println!("rt_avg:         {:.3} s", report.rt_avg);
    println!("relative cost:  {:.3}", report.relative_cost);
    println!(
        "serving:        {} refits ({} drift), {} planned / {} skipped / {} failed rounds",
        report.stats.refits,
        report.stats.drift_refits,
        report.stats.planning_rounds,
        report.stats.skipped_rounds,
        report.stats.failed_rounds
    );
    if report.stats.plan_cache_hits > 0 {
        println!(
            "plan reuse:     {} cached round(s) served without resampling",
            report.stats.plan_cache_hits
        );
    }
    if let Some(queue) = &report.queue {
        println!(
            "ingest queue:   {} enqueued, {} dropped (full), peak {} queued, \
             {:.1} drained/round",
            queue.enqueued,
            queue.dropped_full,
            queue.queued_peak,
            report.drained_per_round.unwrap_or(0.0)
        );
    }
}

fn arg_f64(flag: &str, value: Option<String>) -> f64 {
    value.and_then(|v| v.parse().ok()).unwrap_or_else(|| {
        eprintln!("{flag} needs a numeric value");
        std::process::exit(2);
    })
}

fn main() {
    let mut restart_dir: Option<String> = None;
    let mut json_path: Option<String> = None;
    let mut record_path: Option<String> = None;
    let mut faults = FaultPlan {
        seed: 1_337,
        ..FaultPlan::default()
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            "--restart-dir" => {
                restart_dir = Some(args.next().expect("--restart-dir needs a path"));
            }
            "--record" => record_path = Some(args.next().expect("--record needs a path")),
            "--json" => json_path = Some(args.next().expect("--json needs a path")),
            "--fault-seed" => faults.seed = arg_f64(&arg, args.next()) as u64,
            "--fault-plan-error" => faults.plan_error = arg_f64(&arg, args.next()),
            "--fault-arrival-nan" => faults.arrival_nan = arg_f64(&arg, args.next()),
            "--fault-clock-skew" => faults.clock_skew = arg_f64(&arg, args.next()),
            "--fault-clock-skew-secs" => faults.clock_skew_secs = arg_f64(&arg, args.next()),
            other => {
                eprintln!("unknown flag `{other}` (see --help)");
                std::process::exit(2);
            }
        }
    }
    let faulted = faults.enabled();

    let hours = env_f64("HARNESS_HOURS", 6.0);
    let trace = google_like(&TraceConfig {
        duration: hours * 3_600.0,
        traffic_scale: env_f64("HARNESS_SCALE", 0.5),
        processing: ProcessingTimeModel::Exponential { mean: 20.0 },
        seed: 424_242,
    });

    let mut pipeline =
        RobustScalerConfig::for_variant(RobustScalerVariant::HittingProbability { target: 0.9 });
    pipeline.mean_processing = 20.0;
    pipeline.monte_carlo_samples = 300;
    pipeline.planning_interval = 10.0;
    pipeline.admm.max_iterations = 80;
    pipeline.seed = 7;
    let config = HarnessConfig {
        online: OnlineConfig::new(pipeline),
        sim: SimulationConfig {
            pending: PendingTimeDistribution::Deterministic(13.0),
            seed: 9,
            recent_history_window: 600.0,
        },
        warmup: (hours / 2.0) * 3_600.0,
        faults: faulted.then_some(faults),
        plan_reuse: {
            let quantization = env_f64("HARNESS_PLAN_REUSE", 0.0);
            (quantization > 0.0).then_some(quantization)
        },
    };

    println!(
        "Closed-loop harness — {hours} h trace, {} h warm-up{}",
        hours / 2.0,
        if faulted {
            format!(" — chaos mode (fault seed {})", faults.seed)
        } else {
            String::new()
        }
    );
    let (report, trace_summary) = match &record_path {
        Some(path) => {
            let (report, _, summary) =
                run_closed_loop_recorded(&trace, &config, path).expect("recorded closed loop runs");
            (report, Some(summary))
        }
        None => {
            let (report, _) = run_closed_loop(&trace, &config).expect("closed loop runs");
            (report, None)
        }
    };
    print_report(&report);
    if let Some(summary) = &trace_summary {
        println!(
            "trace:          {} ({} records, {} rounds)",
            summary.path, summary.records, summary.rounds
        );
    }
    let warnings = collect_warnings(&report, faulted);
    for warning in &warnings {
        println!("warning:        {warning}");
    }

    if let Some(dir) = restart_dir {
        let (restarted, _) =
            run_closed_loop_with_restart(&trace, &config, &dir).expect("restart replay runs");
        let identical = restarted == report;
        println!(
            "\nkill-and-restore replay via {dir}: {}",
            if identical { "IDENTICAL" } else { "MISMATCH" }
        );
        if !identical {
            std::process::exit(1);
        }
    }

    if let Some(path) = json_path {
        let json = serde_json::to_string(&DemoJson {
            report,
            trace: trace_summary,
            warnings,
        })
        .expect("serializable report");
        std::fs::write(&path, json).expect("writable json path");
        println!("report written to {path}");
    }
}
