//! Table III: impact of the periodicity regularization on the NHPP
//! intensity estimation error.
//!
//! Arrival data are generated from the paper's closed-form daily intensity
//! `λ(t) = 4¹⁰·u¹⁰(1−u)¹⁰ + 0.1` over one week; the regularized loss (eq. 1)
//! is trained with and without the `D_L` periodic penalty and the MSE/MAE of
//! the two intensity estimates against the ground truth are compared. The
//! paper reports a 56% MSE / 39% MAE improvement from the regularizer.

use rand::rngs::StdRng;
use rand::SeedableRng;
use robustscaler_bench::workloads::scale_from_env;
use robustscaler_nhpp::{sample_arrivals_thinning, AdmmConfig, ClosedFormIntensity, NhppModel};
use robustscaler_timeseries::TimeSeries;
use robustscaler_traces::periodic_ground_truth;

const DAY: f64 = 86_400.0;

fn main() {
    // Scale controls the bucket width (and therefore the problem size):
    // scale 1.0 → 10-minute buckets over one week (1008 buckets).
    let scale = scale_from_env(1.0);
    let bucket = (600.0 / scale).max(60.0);
    let duration = 7.0 * DAY;
    println!("Table III reproduction — periodicity regularization (Δt = {bucket:.0} s, 1 week)");

    let (rate, period_seconds) = periodic_ground_truth();
    let intensity = ClosedFormIntensity::new(rate.clone(), 30.0).expect("valid resolution");
    let mut rng = StdRng::seed_from_u64(33);
    let arrivals = sample_arrivals_thinning(&intensity, 0.0, duration, &mut rng);
    println!(
        "generated {} arrivals from the ground-truth intensity",
        arrivals.len()
    );

    let counts =
        TimeSeries::from_event_times(&arrivals, 0.0, duration, bucket).expect("valid series");
    let period_buckets = (period_seconds / bucket).round() as usize;

    let fit = |period: Option<usize>, beta2: f64| {
        let config = AdmmConfig {
            beta1: 2.0,
            beta2,
            max_iterations: 150,
            ..AdmmConfig::default()
        };
        NhppModel::fit(&counts, period, config).expect("fit succeeds")
    };

    let with_reg = fit(Some(period_buckets), 10.0);
    let without_reg = fit(None, 0.0);

    let errors = |model: &NhppModel| {
        let mut squared = 0.0;
        let mut absolute = 0.0;
        let rates = model.rates();
        for (idx, fitted) in rates.iter().enumerate() {
            let mid = (idx as f64 + 0.5) * bucket;
            let truth = rate(mid);
            squared += (fitted - truth) * (fitted - truth);
            absolute += (fitted - truth).abs();
        }
        (squared / rates.len() as f64, absolute / rates.len() as f64)
    };

    let (mse_with, mae_with) = errors(&with_reg);
    let (mse_without, mae_without) = errors(&without_reg);

    println!(
        "\n{:<8} {:>16} {:>16} {:>14}",
        "metric", "NHPP w/o reg.", "NHPP w/ reg.", "improvement"
    );
    println!(
        "{:<8} {:>16.3e} {:>16.3e} {:>13.0}%",
        "MSE",
        mse_without,
        mse_with,
        100.0 * (1.0 - mse_with / mse_without)
    );
    println!(
        "{:<8} {:>16.3e} {:>16.3e} {:>13.0}%",
        "MAE",
        mae_without,
        mae_with,
        100.0 * (1.0 - mae_with / mae_without)
    );
    println!(
        "\nExpected shape (paper Table III): the periodicity regularization cuts\n\
         both errors substantially (paper: 56% MSE, 39% MAE)."
    );
}
