//! Replay a recorded session trace and validate it.
//!
//! ```text
//! trace_replay <trace.jsonl> [--strict | --lenient]
//!              [--min-hit-rate X] [--max-rt-avg X] [--max-relative-cost X]
//! ```
//!
//! * `--strict` (default) re-executes the session from the trace header and
//!   fails on the **first** bit-level divergence, printing a pointed diff
//!   (round, tenant, field, expected vs got);
//! * `--lenient` re-executes the whole session, collects every divergence,
//!   and additionally judges the recorded QoS metrics against the policy
//!   bands given by the `--min-hit-rate` / `--max-rt-avg` /
//!   `--max-relative-cost` flags.
//!
//! Exit status: 0 when the replay passes, 1 on any divergence, band
//! violation or trace error, 2 on usage errors.

use robustscaler_online::{replay_path, PolicyBands, ReplayMode};

fn parse_f64(flag: &str, value: Option<String>) -> f64 {
    value.and_then(|v| v.parse().ok()).unwrap_or_else(|| {
        eprintln!("{flag} needs a numeric value");
        std::process::exit(2);
    })
}

fn main() {
    let mut trace: Option<String> = None;
    let mut mode = ReplayMode::Strict;
    let mut bands = PolicyBands::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--strict" => mode = ReplayMode::Strict,
            "--lenient" => mode = ReplayMode::Lenient,
            "--min-hit-rate" => bands.min_hit_rate = Some(parse_f64(&arg, args.next())),
            "--max-rt-avg" => bands.max_rt_avg = Some(parse_f64(&arg, args.next())),
            "--max-relative-cost" => bands.max_relative_cost = Some(parse_f64(&arg, args.next())),
            other if other.starts_with("--") => {
                eprintln!(
                    "unknown flag `{other}` (expected --strict/--lenient/\
                     --min-hit-rate/--max-rt-avg/--max-relative-cost)"
                );
                std::process::exit(2);
            }
            path => {
                if trace.replace(path.to_string()).is_some() {
                    eprintln!("exactly one trace path expected");
                    std::process::exit(2);
                }
            }
        }
    }
    let Some(trace) = trace else {
        eprintln!(
            "usage: trace_replay <trace.jsonl> [--strict|--lenient] \
             [--min-hit-rate X] [--max-rt-avg X] [--max-relative-cost X]"
        );
        std::process::exit(2);
    };

    let report = match replay_path(&trace, mode, &bands) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("replay of {trace} failed: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "replayed {trace}: {:?} {:?} session, {} tenant(s), {} rounds, \
         {} records, {} plans checked, {} refits checked",
        report.mode,
        report.session,
        report.tenants,
        report.rounds,
        report.records,
        report.plans_checked,
        report.refits_checked
    );
    if let Some(qos) = &report.qos {
        if let (Some(hit_rate), Some(rt_avg)) = (qos.hit_rate, qos.rt_avg) {
            println!(
                "recorded QoS: hit rate {hit_rate:.4}, rt_avg {rt_avg:.3} s, \
                 relative cost {}",
                qos.relative_cost
                    .map_or_else(|| "n/a".to_string(), |c| format!("{c:.3}"))
            );
        }
    }
    for divergence in &report.divergences {
        eprintln!("divergence: {divergence}");
    }
    for violation in &report.band_violations {
        eprintln!("band violation: {violation}");
    }
    if !report.passed() {
        eprintln!(
            "FAILED: {} divergence(s), {} band violation(s)",
            report.divergences.len(),
            report.band_violations.len()
        );
        std::process::exit(1);
    }
    println!("PASSED");
}
