//! Figure 8: runtime of computing the scaling decisions (eqs. 3, 5, 7)
//! versus the instantaneous QPS, on the simulated high-QPS workload.
//!
//! The paper updates decisions every 5 seconds with R = 1000 Monte Carlo
//! samples and reports per-update runtimes of a few seconds even at QPS in
//! the thousands, growing linearly with QPS. This binary sweeps the QPS
//! level, times one planning round per level for each of the three decision
//! rules, and prints the (QPS, runtime) series.

use rand::rngs::StdRng;
use rand::SeedableRng;
use robustscaler_bench::workloads::scale_from_env;
use robustscaler_nhpp::PiecewiseConstantIntensity;
use robustscaler_scaling::{
    DecisionConfig, DecisionRule, PendingTimeModel, PlannerConfig, PlannerState, SequentialPlanner,
};
use std::time::Instant;

fn time_planning(rule: DecisionRule, qps: f64, replications: usize) -> (f64, usize) {
    let planner = SequentialPlanner::new(PlannerConfig {
        decision: DecisionConfig {
            rule,
            pending: PendingTimeModel::Deterministic(13.0),
            monte_carlo_samples: replications,
        },
        planning_interval: 5.0,
        max_decisions_per_round: 200_000,
    })
    .expect("valid planner config");
    let intensity =
        PiecewiseConstantIntensity::new(0.0, 1_000_000.0, vec![qps]).expect("valid intensity");
    let mut rng = StdRng::seed_from_u64(qps as u64 + 1);
    let started = Instant::now();
    let round = planner
        .plan_window(&intensity, 0.0, PlannerState { covered: 0 }, &mut rng)
        .expect("planning succeeds");
    (started.elapsed().as_secs_f64(), round.decisions.len())
}

fn main() {
    let scale = scale_from_env(1.0);
    // The paper sweeps QPS up to 10^4; at scale 1.0 we go up to 2000 QPS so
    // the experiment finishes in seconds (the trend is already linear).
    let max_qps = 2_000.0 * scale;
    let replications = 1_000;
    println!(
        "Figure 8 reproduction — decision runtime vs QPS (R = {replications}, Δ = 5 s, peak {max_qps} QPS)"
    );
    println!(
        "\n{:>10} {:>22} {:>22} {:>22}",
        "QPS", "HP runtime (s)", "RT runtime (s)", "cost runtime (s)"
    );
    let mut qps = 1.0;
    while qps <= max_qps {
        let (hp_time, hp_n) = time_planning(
            DecisionRule::HittingProbability { alpha: 0.1 },
            qps,
            replications,
        );
        let (rt_time, _) = time_planning(
            DecisionRule::ResponseTime {
                target_waiting: 1.0,
            },
            qps,
            replications,
        );
        let (cost_time, _) = time_planning(
            DecisionRule::CostBudget { target_idle: 2.0 },
            qps,
            replications,
        );
        println!(
            "{:>10.1} {:>22.4} {:>22.4} {:>22.4}   ({} decisions per window)",
            qps, hp_time, rt_time, cost_time, hp_n
        );
        qps *= if qps < 10.0 { 10.0 } else { 2.0 };
    }
    println!(
        "\nExpected shape (paper): runtime grows roughly linearly with QPS (the\n\
         number of per-window decisions is proportional to QPS and each decision\n\
         costs O(R log R)), staying in seconds even at thousands of QPS."
    );
}
