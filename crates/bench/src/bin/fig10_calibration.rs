//! Figure 10(a)–(c): nominal versus actual QoS/cost levels on the CRS-like
//! workload.
//!
//! RobustScaler-HP is swept over nominal hitting probabilities, -RT over
//! nominal response times and -cost over nominal per-instance budgets; each
//! row shows the nominal value next to the value actually achieved on the
//! test trace. Points close to the diagonal (`actual ≈ nominal`) reproduce
//! the paper's calibration claim.

use robustscaler_bench::sweep::{run_policy_spec, PolicySpec};
use robustscaler_bench::workloads::{crs_workload, scale_from_env};

fn main() {
    let scale = scale_from_env(0.25);
    println!("Figure 10(a)-(c) reproduction — nominal vs actual QoS/cost (scale {scale})");
    let workload = crs_workload(scale);

    println!("\n(a) hitting probability: nominal vs actual");
    println!("{:>12} {:>12}", "nominal", "actual");
    for &target in &[0.5, 0.7, 0.8, 0.9, 0.95] {
        let (point, _) = run_policy_spec(&workload, PolicySpec::RobustScalerHp(target), 30.0, 200);
        println!("{:>12.2} {:>12.3}", target, point.hit_rate);
    }

    println!("\n(b) expected response time (s): nominal vs actual");
    println!("{:>12} {:>12}", "nominal", "actual");
    for &target in &[183.0, 186.0, 190.0, 195.0] {
        let (point, _) = run_policy_spec(&workload, PolicySpec::RobustScalerRt(target), 30.0, 200);
        println!("{:>12.1} {:>12.1}", target, point.rt_avg);
    }

    println!("\n(c) per-instance cost (s): nominal vs actual");
    println!("{:>12} {:>12}", "nominal", "actual");
    for &budget in &[195.0, 200.0, 215.0, 230.0] {
        let (point, metrics) =
            run_policy_spec(&workload, PolicySpec::RobustScalerCost(budget), 30.0, 200);
        let actual = metrics.cost_per_query();
        println!(
            "{:>12.1} {:>12.1}   (relative_cost {:.3})",
            budget, actual, point.relative_cost
        );
    }

    println!(
        "\nExpected shape (paper): all three series hug the diagonal y = x —\n\
         the constraint level fed to the optimizer is what the replay achieves.\n\
         Note the RT/cost nominal levels sit close to the processing-time floor\n\
         (~180 s) because waiting and idling are small fractions of a build."
    );
}
