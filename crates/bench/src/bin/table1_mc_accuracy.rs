//! Table I: accuracy of the Monte Carlo approximated decisions on the
//! simulated high-QPS workload.
//!
//! The paper trains on 6 hours of the closed-form hourly-peak intensity,
//! tests on the 7th hour, uses a fixed 13 s pod pending time, Exp(20 s)
//! processing, updates decisions every 5 s with R = 1000, and reports:
//! target HP 0.9 → achieved ≈ 0.99; target extra-RT 1 s → achieved ≈ 0.5 s;
//! target idle cost 2 s → achieved ≈ 2.5 s. The shape to reproduce is
//! "achieved ≈ target (HP conservatively above)".

use robustscaler_bench::workloads::scale_from_env;
use robustscaler_core::{
    evaluate_policy, RobustScalerConfig, RobustScalerPipeline, RobustScalerVariant,
};
use robustscaler_simulator::{PendingTimeDistribution, SimulationConfig};
use robustscaler_traces::{simulated_high_qps, ProcessingTimeModel};

const HOUR: f64 = 3_600.0;

fn main() {
    let scale = scale_from_env(1.0);
    // Peak QPS: the paper uses 10^4; 40·scale keeps the run to a couple of
    // minutes while exercising the same code path (set RS_SCALE higher to
    // push towards the paper's level).
    let peak = 40.0 * scale;
    println!("Table I reproduction — Monte Carlo decision accuracy (peak {peak} QPS)");

    let trace = simulated_high_qps(
        peak,
        7.0 * HOUR,
        ProcessingTimeModel::Exponential { mean: 20.0 },
        2024,
    );
    let (train, test) = trace.split_at(trace.start() + 6.0 * HOUR).unwrap();
    println!(
        "workload: {} train / {} test queries",
        train.len(),
        test.len()
    );

    let sim = SimulationConfig {
        pending: PendingTimeDistribution::Deterministic(13.0),
        seed: 20,
        recent_history_window: 600.0,
    };

    let build = |variant: RobustScalerVariant| {
        let mut config = RobustScalerConfig::for_variant(variant);
        config.mean_processing = 20.0;
        config.planning_interval = 5.0;
        config.monte_carlo_samples = 1_000;
        RobustScalerPipeline::new(config)
            .expect("valid configuration")
            .build_policy(&train)
            .expect("training succeeds")
    };

    println!(
        "\n{:<20} {:>16} {:>16}",
        "variant", "target level", "achieved level"
    );

    // RobustScaler-HP: target hitting probability 0.9.
    let mut hp = build(RobustScalerVariant::HittingProbability { target: 0.9 });
    let (hp_result, _) = evaluate_policy(&test, &mut hp, sim).unwrap();
    println!(
        "{:<20} {:>16.2} {:>16.3}",
        "RobustScaler-HP", 0.9, hp_result.hit_rate
    );

    // RobustScaler-RT: target of 1 s of waiting on top of the 20 s processing
    // mean (the paper reports the d − µ_s part).
    let mut rt = build(RobustScalerVariant::ResponseTime { target: 21.0 });
    let (_, rt_metrics) = evaluate_policy(&test, &mut rt, sim).unwrap();
    println!(
        "{:<20} {:>16.2} {:>16.3}",
        "RobustScaler-RT",
        1.0,
        rt_metrics.waiting_avg()
    );

    // RobustScaler-cost: idle budget of 2 s per instance on top of the fixed
    // 13 + 20 s.
    let mut cost = build(RobustScalerVariant::CostBudget { budget: 35.0 });
    let (_, cost_metrics) = evaluate_policy(&test, &mut cost, sim).unwrap();
    let achieved_idle = cost_metrics.cost_per_query() - 13.0 - 20.0;
    println!(
        "{:<20} {:>16.2} {:>16.3}",
        "RobustScaler-cost", 2.0, achieved_idle
    );

    println!(
        "\nExpected shape (paper Table I): HP achieved ≥ target (0.99 vs 0.9),\n\
         RT-waiting achieved ≤ target (0.51 vs 1), idle cost achieved slightly\n\
         above target (2.5 vs 2) — Monte Carlo with R = 1000 is accurate enough."
    );
}
