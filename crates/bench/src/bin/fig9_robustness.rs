//! Figure 9: QoS/cost before and after (a) injecting missing data into the
//! CRS-like training trace and (b) erasing the burst anomaly from the
//! Alibaba-like training trace, for RobustScaler-HP and RobustScaler-cost.
//!
//! If the metric pairs are nearly identical, the autoscaler is robust to the
//! modification — the paper's Fig. 9 conclusion.

use robustscaler_bench::sweep::{print_table, run_policy_spec, ParetoPoint, PolicySpec};
use robustscaler_bench::workloads::{alibaba_workload, crs_workload, scale_from_env, Workload};
use robustscaler_traces::{erase_burst, remove_day};

const DAY: f64 = 86_400.0;
const HOUR: f64 = 3_600.0;

fn run_specs(workload: &Workload, specs: &[PolicySpec], suffix: &str) -> Vec<ParetoPoint> {
    specs
        .iter()
        .map(|&spec| {
            eprintln!("  running {} ({suffix}) ...", spec.label());
            let (mut point, _) = run_policy_spec(workload, spec, 30.0, 200);
            point.label = format!("{} {suffix}", point.label);
            point
        })
        .collect()
}

fn main() {
    let scale = scale_from_env(0.25);
    println!("Figure 9 reproduction — robustness to missing data and anomalies (scale {scale})");

    let specs = [
        PolicySpec::RobustScalerHp(0.8),
        PolicySpec::RobustScalerHp(0.95),
        PolicySpec::RobustScalerCost(200.0),
        PolicySpec::RobustScalerCost(230.0),
    ];

    // (a)(b) CRS-like with one full training day removed.
    let crs = crs_workload(scale);
    let crs_missing = Workload {
        train: remove_day(&crs.train, 6),
        ..crs.clone()
    };
    let mut points = run_specs(&crs, &specs, "w/o missing");
    points.extend(run_specs(&crs_missing, &specs, "w/ missing"));
    print_table(
        "Fig. 9(a)/(b) — CRS-like, before vs after missing-data injection",
        &points,
    );

    // (c)(d) Alibaba-like with the day-4 burst erased from training data.
    let alibaba = alibaba_workload(scale);
    let burst_start = 3.0 * DAY + 15.0 * HOUR;
    let alibaba_clean = Workload {
        train: erase_burst(&alibaba.train, burst_start, burst_start + 2_400.0, 0.15, 5),
        ..alibaba.clone()
    };
    let specs_ali = [
        PolicySpec::RobustScalerHp(0.8),
        PolicySpec::RobustScalerHp(0.95),
        PolicySpec::RobustScalerCost(46.0),
        PolicySpec::RobustScalerCost(55.0),
    ];
    let mut points = run_specs(&alibaba, &specs_ali, "w/ anomaly");
    points.extend(run_specs(&alibaba_clean, &specs_ali, "w/o anomaly"));
    print_table(
        "Fig. 9(c)/(d) — Alibaba-like, before vs after anomaly removal",
        &points,
    );

    println!(
        "\nExpected shape (paper): each \"w/\" row is nearly identical to its\n\
         \"w/o\" counterpart — the NHPP's robust regularization absorbs missing\n\
         data and isolated bursts in the training window."
    );
}
