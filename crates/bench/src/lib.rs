//! Experiment harness reproducing the paper's tables and figures.
//!
//! Each table/figure has a dedicated binary in `src/bin/` (see `DESIGN.md`
//! for the experiment index); this library provides the shared pieces:
//! scaled-down versions of the three evaluation workloads, Pareto sweep
//! helpers, and plain-text table printing. The synthetic workloads are
//! smaller than the originals (see the substitution table in `DESIGN.md`) so
//! that every experiment runs in minutes on a laptop, while preserving the
//! qualitative structure — periodicity, noise, spikes and bursts — that the
//! paper's comparisons rely on.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod sweep;
pub mod workloads;

pub use sweep::{print_table, run_policy_spec, ParetoPoint, PolicySpec};
pub use workloads::{alibaba_workload, crs_workload, google_workload, Workload};
