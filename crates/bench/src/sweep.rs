//! Pareto sweep helpers: run one policy configuration over a workload and
//! collect the paper's headline metrics.

use crate::workloads::Workload;
use robustscaler_core::{
    evaluate_policy, RobustScalerConfig, RobustScalerPipeline, RobustScalerVariant,
};
use robustscaler_simulator::{AdaptiveBackupPool, BackupPool, SimulationMetrics};
use serde::{Deserialize, Serialize};

/// One policy configuration of a Pareto sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum PolicySpec {
    /// Backup Pool with the given size.
    BackupPool(usize),
    /// Adaptive Backup Pool with the given QPS multiplier.
    AdaptiveBackupPool(f64),
    /// RobustScaler-HP with the given target hitting probability.
    RobustScalerHp(f64),
    /// RobustScaler-RT with the given target expected response time (s).
    RobustScalerRt(f64),
    /// RobustScaler-cost with the given per-instance budget (s).
    RobustScalerCost(f64),
}

impl PolicySpec {
    /// Label used in result tables, e.g. `BP(B=4)` or `RS-HP(0.9)`.
    pub fn label(&self) -> String {
        match self {
            PolicySpec::BackupPool(b) => format!("BP(B={b})"),
            PolicySpec::AdaptiveBackupPool(r) => format!("AdapBP(r={r})"),
            PolicySpec::RobustScalerHp(p) => format!("RS-HP({p})"),
            PolicySpec::RobustScalerRt(d) => format!("RS-RT({d})"),
            PolicySpec::RobustScalerCost(b) => format!("RS-cost({b})"),
        }
    }

    /// Family name used to group points into Pareto lines.
    pub fn family(&self) -> &'static str {
        match self {
            PolicySpec::BackupPool(_) => "BP",
            PolicySpec::AdaptiveBackupPool(_) => "AdapBP",
            PolicySpec::RobustScalerHp(_) => "RobustScaler-HP",
            PolicySpec::RobustScalerRt(_) => "RobustScaler-RT",
            PolicySpec::RobustScalerCost(_) => "RobustScaler-cost",
        }
    }
}

/// One point of a Pareto plot.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ParetoPoint {
    /// Policy family ("BP", "AdapBP", "RobustScaler-HP", ...).
    pub family: String,
    /// Full label including the swept parameter.
    pub label: String,
    /// Hit rate on the test trace.
    pub hit_rate: f64,
    /// Average response time on the test trace (s).
    pub rt_avg: f64,
    /// Total cost (s of instance lifetime).
    pub total_cost: f64,
    /// Cost relative to the purely reactive baseline.
    pub relative_cost: f64,
    /// Variance of hit rate over 50-query windows (QoS stability, Fig. 5a).
    pub hit_variance: f64,
    /// Variance of mean RT over 50-query windows (QoS stability, Fig. 5b).
    pub rt_variance: f64,
}

/// Build the RobustScaler pipeline configuration shared by all sweeps.
///
/// `planning_interval` and `monte_carlo_samples` are exposed because two of
/// the experiments (Fig. 8 and Fig. 10 d) sweep them explicitly.
pub fn robustscaler_config(
    variant: RobustScalerVariant,
    workload: &Workload,
    planning_interval: f64,
    monte_carlo_samples: usize,
) -> RobustScalerConfig {
    let mut config = RobustScalerConfig::for_variant(variant);
    config.mean_processing = workload.mean_processing;
    config.planning_interval = planning_interval;
    config.monte_carlo_samples = monte_carlo_samples;
    config.admm.max_iterations = 100;
    config
}

/// Run a whole sweep of policy configurations over one workload, fanning the
/// independent evaluations out across the machine's cores.
///
/// Each spec trains and simulates with its own seeded RNGs (nothing is
/// shared), so the results are identical to running [`run_policy_spec`]
/// serially in order — parallelism only changes the wall-clock time.
pub fn run_policy_specs(
    workload: &Workload,
    specs: &[PolicySpec],
    planning_interval: f64,
    monte_carlo_samples: usize,
) -> Vec<(ParetoPoint, SimulationMetrics)> {
    robustscaler_parallel::parallel_map(
        specs,
        robustscaler_parallel::available_threads(),
        |&spec| {
            eprintln!("  running {} on {} ...", spec.label(), workload.name);
            run_policy_spec(workload, spec, planning_interval, monte_carlo_samples)
        },
    )
}

/// Run one policy configuration over a workload and report its Pareto point
/// together with the full simulation metrics.
pub fn run_policy_spec(
    workload: &Workload,
    spec: PolicySpec,
    planning_interval: f64,
    monte_carlo_samples: usize,
) -> (ParetoPoint, SimulationMetrics) {
    let (result, metrics) = match spec {
        PolicySpec::BackupPool(size) => {
            let mut policy = BackupPool::new(size);
            evaluate_policy(&workload.test, &mut policy, workload.sim).expect("simulation succeeds")
        }
        PolicySpec::AdaptiveBackupPool(ratio) => {
            let mut policy = AdaptiveBackupPool::new(ratio);
            evaluate_policy(&workload.test, &mut policy, workload.sim).expect("simulation succeeds")
        }
        PolicySpec::RobustScalerHp(target) => {
            let config = robustscaler_config(
                RobustScalerVariant::HittingProbability { target },
                workload,
                planning_interval,
                monte_carlo_samples,
            );
            let mut policy = RobustScalerPipeline::new(config)
                .expect("valid configuration")
                .build_policy(&workload.train)
                .expect("training succeeds");
            evaluate_policy(&workload.test, &mut policy, workload.sim).expect("simulation succeeds")
        }
        PolicySpec::RobustScalerRt(target) => {
            let config = robustscaler_config(
                RobustScalerVariant::ResponseTime { target },
                workload,
                planning_interval,
                monte_carlo_samples,
            );
            let mut policy = RobustScalerPipeline::new(config)
                .expect("valid configuration")
                .build_policy(&workload.train)
                .expect("training succeeds");
            evaluate_policy(&workload.test, &mut policy, workload.sim).expect("simulation succeeds")
        }
        PolicySpec::RobustScalerCost(budget) => {
            let config = robustscaler_config(
                RobustScalerVariant::CostBudget { budget },
                workload,
                planning_interval,
                monte_carlo_samples,
            );
            let mut policy = RobustScalerPipeline::new(config)
                .expect("valid configuration")
                .build_policy(&workload.train)
                .expect("training succeeds");
            evaluate_policy(&workload.test, &mut policy, workload.sim).expect("simulation succeeds")
        }
    };

    let point = ParetoPoint {
        family: spec.family().to_string(),
        label: spec.label(),
        hit_rate: result.hit_rate,
        rt_avg: result.rt_avg,
        total_cost: result.total_cost,
        relative_cost: result.relative_cost,
        hit_variance: metrics.windowed_hit_variance(50).unwrap_or(0.0),
        rt_variance: metrics.windowed_rt_variance(50).unwrap_or(0.0),
    };
    (point, metrics)
}

/// Print a set of Pareto points as an aligned plain-text table.
pub fn print_table(title: &str, points: &[ParetoPoint]) {
    println!("\n== {title} ==");
    println!(
        "{:<22} {:>9} {:>9} {:>13} {:>12} {:>12}",
        "policy", "hit_rate", "rt_avg", "relative_cost", "hit_var", "rt_var"
    );
    for p in points {
        println!(
            "{:<22} {:>9.3} {:>9.1} {:>13.3} {:>12.5} {:>12.2}",
            p.label, p.hit_rate, p.rt_avg, p.relative_cost, p.hit_variance, p.rt_variance
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads::google_workload;

    #[test]
    fn labels_and_families() {
        assert_eq!(PolicySpec::BackupPool(3).label(), "BP(B=3)");
        assert_eq!(PolicySpec::BackupPool(3).family(), "BP");
        assert_eq!(PolicySpec::AdaptiveBackupPool(30.0).family(), "AdapBP");
        assert_eq!(PolicySpec::RobustScalerHp(0.9).label(), "RS-HP(0.9)");
        assert_eq!(PolicySpec::RobustScalerRt(25.0).family(), "RobustScaler-RT");
        assert_eq!(
            PolicySpec::RobustScalerCost(40.0).family(),
            "RobustScaler-cost"
        );
    }

    #[test]
    fn baseline_sweep_produces_monotone_cost() {
        let workload = google_workload(0.15);
        let (small, _) = run_policy_spec(&workload, PolicySpec::BackupPool(0), 30.0, 100);
        let (large, _) = run_policy_spec(&workload, PolicySpec::BackupPool(3), 30.0, 100);
        assert!(large.total_cost > small.total_cost);
        assert!(large.hit_rate >= small.hit_rate);
        assert!((small.relative_cost - 1.0).abs() < 1e-9);
    }
}
