//! The three evaluation workloads, scaled for laptop-speed experiments.

use robustscaler_simulator::{PendingTimeDistribution, SimulationConfig, Trace};
use robustscaler_traces::{alibaba_like, crs_like, google_like, ProcessingTimeModel, TraceConfig};

/// Seconds per day.
pub const DAY: f64 = 86_400.0;
/// Seconds per hour.
pub const HOUR: f64 = 3_600.0;

/// Traffic scale used by the experiment binaries: read from the `RS_SCALE`
/// environment variable, defaulting to `default` (the value each experiment
/// was tuned for). Larger scales reproduce the paper's volumes more closely
/// at the price of longer runs.
pub fn scale_from_env(default: f64) -> f64 {
    std::env::var("RS_SCALE")
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .filter(|v| *v > 0.0)
        .unwrap_or(default)
}

/// A workload ready for experiments: a train/test split plus the simulation
/// configuration (pending-time model and seed) used when replaying it.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Short name used in report tables ("crs", "alibaba", "google").
    pub name: &'static str,
    /// Training portion of the trace.
    pub train: Trace,
    /// Testing portion of the trace.
    pub test: Trace,
    /// Mean processing time of the workload's queries (seconds).
    pub mean_processing: f64,
    /// Simulation configuration used for replay.
    pub sim: SimulationConfig,
}

fn sim_config(seed: u64) -> SimulationConfig {
    SimulationConfig {
        pending: PendingTimeDistribution::Deterministic(13.0),
        seed,
        recent_history_window: 600.0,
    }
}

/// CRS-like workload: three weeks of low, noisy, weekly-periodic traffic
/// with long build-like processing times; train on the first two weeks.
///
/// `scale` multiplies the traffic volume (1.0 ≈ a few tens of thousands of
/// queries; use smaller values for quick runs).
pub fn crs_workload(scale: f64) -> Workload {
    let trace = crs_like(&TraceConfig {
        duration: 21.0 * DAY,
        traffic_scale: 4.0 * scale,
        processing: ProcessingTimeModel::LogNormal {
            mean: 180.0,
            std_dev: 240.0,
        },
        seed: 2022,
    });
    let (train, test) = trace
        .split_at(trace.start() + 14.0 * DAY)
        .expect("three-week trace splits at two weeks");
    Workload {
        name: "crs",
        train,
        test,
        mean_processing: 180.0,
        sim: sim_config(11),
    }
}

/// Alibaba-like workload: five days of strongly daily-periodic traffic with
/// recurrent spikes and a burst anomaly on day 4; train on the first four
/// days, test on the last.
pub fn alibaba_workload(scale: f64) -> Workload {
    let trace = alibaba_like(&TraceConfig {
        duration: 5.0 * DAY,
        traffic_scale: 0.08 * scale,
        processing: ProcessingTimeModel::Exponential { mean: 30.0 },
        seed: 2018,
    });
    let (train, test) = trace
        .split_at(trace.start() + 4.0 * DAY)
        .expect("five-day trace splits at four days");
    Workload {
        name: "alibaba",
        train,
        test,
        mean_processing: 30.0,
        sim: sim_config(12),
    }
}

/// Google-like workload: 24 hours of diurnal traffic with recurrent spikes;
/// train on the first 18 hours, test on the last 6 (the paper's split).
pub fn google_workload(scale: f64) -> Workload {
    let trace = google_like(&TraceConfig {
        duration: 24.0 * HOUR,
        traffic_scale: 1.0 * scale,
        processing: ProcessingTimeModel::Exponential { mean: 60.0 },
        seed: 2019,
    });
    let (train, test) = trace
        .split_at(trace.start() + 18.0 * HOUR)
        .expect("24-hour trace splits at 18 hours");
    Workload {
        name: "google",
        train,
        test,
        mean_processing: 60.0,
        sim: sim_config(13),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workloads_have_sensible_shapes() {
        let crs = crs_workload(0.3);
        assert!(crs.train.len() > 200, "crs train {}", crs.train.len());
        assert!(crs.test.len() > 100);
        assert!(crs.train.duration() > 13.0 * DAY);

        let ali = alibaba_workload(0.3);
        assert!(ali.train.len() > 1_000);
        assert!(ali.test.len() > 200);

        let goo = google_workload(0.3);
        assert!(goo.train.len() > 500);
        assert!(goo.test.len() > 100);
        assert!(goo.test.duration() < 6.1 * HOUR);
    }

    #[test]
    fn scaling_the_workload_scales_the_volume() {
        let small = google_workload(0.2);
        let large = google_workload(0.6);
        assert!(large.train.len() > 2 * small.train.len());
    }
}
