//! Criterion bench: multi-tenant fleet planning throughput.
//!
//! One iteration is one full fleet round — every tenant refreshes its
//! forecast if needed and plans its next window (R = 250 Monte Carlo
//! samples, ~5–25 arrivals per 10 s window across the tenant mix). The
//! acceptance bar for the serving layer is ≥ 100 tenant-rounds/sec at
//! R = 250 on one core, i.e. ≤ 2.5 s per round at 250 tenants serially.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use robustscaler_core::{RobustScalerConfig, RobustScalerVariant};
use robustscaler_nhpp::NhppModel;
use robustscaler_online::{OnlineConfig, TenantFleet};
use robustscaler_parallel::available_threads;

/// Warm-started fleet: models installed directly so the timed loop
/// measures the serving path (forecast refresh + plan window), not ADMM.
fn build_fleet(tenants: usize, samples: usize) -> TenantFleet {
    let mut pipeline =
        RobustScalerConfig::for_variant(RobustScalerVariant::HittingProbability { target: 0.9 });
    pipeline.planning_interval = 10.0;
    pipeline.monte_carlo_samples = samples;
    pipeline.mean_processing = 20.0;
    let config = OnlineConfig::new(pipeline);
    let mut fleet = TenantFleet::new(&config, 0.0, tenants, 7).expect("valid fleet");
    for index in 0..tenants {
        let base = 0.5 + 2.0 * (index as f64 / tenants.max(2) as f64);
        let log_rates = vec![base.ln(); 1_440];
        let model = NhppModel::from_log_rates(0.0, 60.0, log_rates, Some(1_440)).expect("model");
        fleet
            .tenant_mut(index)
            .expect("index in range")
            .scaler
            .install_model(model, 0.0)
            .expect("install");
    }
    fleet
}

fn bench_fleet_round(c: &mut Criterion) {
    let mut group = c.benchmark_group("fleet_round_vs_tenants");
    group.sample_size(10);
    for &tenants in &[100usize, 250, 1_000] {
        group.bench_with_input(
            BenchmarkId::from_parameter(tenants),
            &tenants,
            |b, &tenants| {
                let mut fleet = build_fleet(tenants, 250);
                fleet.set_workers(1);
                let mut round = 0u64;
                b.iter(|| {
                    // Advance time so the forecast cache is exercised like a
                    // live serving loop (refresh roughly once per horizon).
                    let now = 86_400.0 + 10.0 * round as f64;
                    round += 1;
                    fleet.run_round_uniform(now, 0).expect("round succeeds")
                });
            },
        );
    }
    group.finish();
}

fn bench_fleet_round_parallel(c: &mut Criterion) {
    let mut group = c.benchmark_group("fleet_round_parallel");
    group.sample_size(10);
    let workers = available_threads();
    for &tenants in &[250usize, 1_000] {
        group.bench_with_input(
            BenchmarkId::from_parameter(tenants),
            &tenants,
            |b, &tenants| {
                let mut fleet = build_fleet(tenants, 250);
                fleet.set_workers(workers);
                let mut round = 0u64;
                b.iter(|| {
                    let now = 86_400.0 + 10.0 * round as f64;
                    round += 1;
                    fleet.run_round_uniform(now, 0).expect("round succeeds")
                });
            },
        );
    }
    group.finish();
}

/// Durable-state path: checkpoint (snapshot + serialize + atomic shard
/// writes) and restore (read + checksum-verify + deserialize + forecast
/// cache rebuild) of a warm fleet, sharded at the default group size.
fn bench_fleet_checkpoint(c: &mut Criterion) {
    let mut group = c.benchmark_group("fleet_checkpoint");
    group.sample_size(10);
    let dir = std::env::temp_dir().join(format!("robustscaler-bench-ckpt-{}", std::process::id()));
    for &tenants in &[100usize, 250] {
        let mut fleet = build_fleet(tenants, 250);
        fleet.set_workers(1);
        // A planned round so snapshots carry live RNG/cache state, as in
        // production — an idle fleet would checkpoint unrealistically fast.
        fleet
            .run_round_uniform(86_400.0, 0)
            .expect("round succeeds");
        group.bench_with_input(BenchmarkId::new("write", tenants), &tenants, |b, _| {
            b.iter(|| fleet.checkpoint(&dir).expect("checkpoint succeeds"));
        });
        fleet.checkpoint(&dir).expect("checkpoint succeeds");
        let config = fleet.tenant(0).expect("tenant 0").scaler.config();
        let config = *config;
        group.bench_with_input(BenchmarkId::new("restore", tenants), &tenants, |b, _| {
            b.iter(|| TenantFleet::restore(&dir, &config).expect("restore succeeds"));
        });
        let _ = std::fs::remove_dir_all(&dir);
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_fleet_round,
    bench_fleet_round_parallel,
    bench_fleet_checkpoint
);
criterion_main!(benches);
