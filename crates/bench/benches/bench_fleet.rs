//! Criterion bench: multi-tenant fleet planning throughput.
//!
//! One iteration is one full fleet round — every tenant refreshes its
//! forecast if needed and plans its next window (R = 250 Monte Carlo
//! samples, ~5–25 arrivals per 10 s window across the tenant mix). The
//! acceptance bar for the serving layer is ≥ 100 tenant-rounds/sec at
//! R = 250 on one core, i.e. ≤ 2.5 s per round at 250 tenants serially.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use robustscaler_core::{RobustScalerConfig, RobustScalerVariant};
use robustscaler_nhpp::NhppModel;
use robustscaler_online::{BusConfig, OnlineConfig, SharingConfig, TenantFleet};
use robustscaler_parallel::available_threads;

/// Warm-started fleet: models installed directly so the timed loop
/// measures the serving path (forecast refresh + plan window), not ADMM.
fn build_fleet(tenants: usize, samples: usize) -> TenantFleet {
    let mut pipeline =
        RobustScalerConfig::for_variant(RobustScalerVariant::HittingProbability { target: 0.9 });
    pipeline.planning_interval = 10.0;
    pipeline.monte_carlo_samples = samples;
    pipeline.mean_processing = 20.0;
    let config = OnlineConfig::new(pipeline);
    let mut fleet = TenantFleet::new(&config, 0.0, tenants, 7).expect("valid fleet");
    for index in 0..tenants {
        let base = 0.5 + 2.0 * (index as f64 / tenants.max(2) as f64);
        let log_rates = vec![base.ln(); 1_440];
        let model = NhppModel::from_log_rates(0.0, 60.0, log_rates, Some(1_440)).expect("model");
        fleet
            .tenant_mut(index)
            .expect("index in range")
            .scaler
            .install_model(model, 0.0)
            .expect("install");
    }
    fleet
}

fn bench_fleet_round(c: &mut Criterion) {
    let mut group = c.benchmark_group("fleet_round_vs_tenants");
    group.sample_size(10);
    for &tenants in &[100usize, 250, 1_000] {
        group.bench_with_input(
            BenchmarkId::from_parameter(tenants),
            &tenants,
            |b, &tenants| {
                let mut fleet = build_fleet(tenants, 250);
                fleet.set_workers(1);
                // Cross-tenant batched planning + plan reuse on: the
                // production configuration for large fleets (the
                // `fleet_round_batched` group isolates each layer's
                // speedup against the private path).
                fleet
                    .set_sharing(SharingConfig::on())
                    .expect("valid sharing");
                // One untimed warm-up round so the timed iterations measure
                // the steady state (plan cache populated). The cold all-miss
                // round is what `fleet_round_batched/sharing_only` measures.
                fleet.run_round_uniform(86_400.0, 0).expect("warm-up round");
                let mut round = 1u64;
                b.iter(|| {
                    // Advance time so the forecast cache is exercised like a
                    // live serving loop (refresh roughly once per horizon).
                    let now = 86_400.0 + 10.0 * round as f64;
                    round += 1;
                    fleet.run_round_uniform(now, 0).expect("round succeeds")
                });
            },
        );
    }
    group.finish();
}

/// Cross-tenant batched planning and plan reuse, isolated, on the same
/// 1000-tenant fleet (everything else identical):
///
/// * `sharing_on` — the full production stack ([`SharingConfig::on`]):
///   shared sampling + cluster decision dedup + the round-over-round plan
///   cache. Steady-state rounds time-shift cached plans, so an untimed
///   warm-up round precedes the timed loop; the cold all-miss round costs
///   what `sharing_only` plus the dedup win costs.
/// * `sharing_only` — shared sampling alone ([`SharingConfig::sharing_only`],
///   the PR 9 configuration): one arrival matrix per forecast cluster
///   (~33 clusters for this rate mix at the default 5 % quantization),
///   every member still runs its own decision loop every round.
/// * `sharing_off` — the fully private path.
fn bench_fleet_round_batched(c: &mut Criterion) {
    let mut group = c.benchmark_group("fleet_round_batched");
    group.sample_size(10);
    let tenants = 1_000usize;
    for (label, sharing) in [
        ("sharing_on", Some(SharingConfig::on())),
        ("sharing_only", Some(SharingConfig::sharing_only())),
        ("sharing_off", None),
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(label),
            &sharing,
            |b, sharing| {
                let mut fleet = build_fleet(tenants, 250);
                fleet.set_workers(1);
                if let Some(sharing) = sharing {
                    fleet.set_sharing(*sharing).expect("valid sharing");
                }
                // Untimed warm-up round (uniform across the three flavours
                // for comparability): `sharing_only`/`sharing_off` rounds
                // all cost the same, but `sharing_on`'s first round is the
                // all-miss round that populates the plan cache — the timed
                // loop then measures the steady state the stack exists for.
                fleet.run_round_uniform(86_400.0, 0).expect("warm-up round");
                let mut round = 1u64;
                b.iter(|| {
                    let now = 86_400.0 + 10.0 * round as f64;
                    round += 1;
                    fleet.run_round_uniform(now, 0).expect("round succeeds")
                });
            },
        );
    }
    group.finish();
}

fn bench_fleet_round_parallel(c: &mut Criterion) {
    let mut group = c.benchmark_group("fleet_round_parallel");
    group.sample_size(10);
    let workers = available_threads();
    for &tenants in &[250usize, 1_000] {
        group.bench_with_input(
            BenchmarkId::from_parameter(tenants),
            &tenants,
            |b, &tenants| {
                let mut fleet = build_fleet(tenants, 250);
                fleet.set_workers(workers);
                let mut round = 0u64;
                b.iter(|| {
                    let now = 86_400.0 + 10.0 * round as f64;
                    round += 1;
                    fleet.run_round_uniform(now, 0).expect("round succeeds")
                });
            },
        );
    }
    group.finish();
}

/// Ingestion runtime throughput: arrivals/sec through the bus — one
/// iteration enqueues ~40 sorted arrivals per tenant (`push_batch` under
/// the group locks) and drains every queue into its tenant's ring via the
/// bulk append (`drain_bus`), with no planning. Divide the per-tenant
/// count × tenants by the iteration time for arrivals/sec; compare the
/// iteration time against `fleet_round_vs_tenants` at the same tenant
/// count for the drain share of a round (the "ingestion off the critical
/// path" acceptance bar: ≤ 10 % at 250 tenants, R = 250).
fn bench_ingest_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("ingest_throughput");
    group.sample_size(10);
    const PER_TENANT: usize = 40;
    for &tenants in &[250usize, 1_000] {
        group.bench_with_input(
            BenchmarkId::from_parameter(tenants),
            &tenants,
            |b, &tenants| {
                let mut pipeline =
                    RobustScalerConfig::for_variant(RobustScalerVariant::HittingProbability {
                        target: 0.9,
                    });
                pipeline.planning_interval = 10.0;
                let config = OnlineConfig::new(pipeline);
                let mut fleet = TenantFleet::new(&config, 0.0, tenants, 7).expect("valid fleet");
                fleet.set_workers(1);
                let bus = fleet.attach_bus(BusConfig::default()).expect("fresh bus");
                let mut arrivals = vec![0.0_f64; PER_TENANT];
                let mut tick = 0u64;
                b.iter(|| {
                    // Timestamps advance every iteration so the rings keep
                    // accepting (a stalled clock would drop everything as
                    // stale and unrealistically skip the bucket work).
                    let base = 10.0 * tick as f64;
                    tick += 1;
                    for (k, slot) in arrivals.iter_mut().enumerate() {
                        *slot = base + k as f64 * (10.0 / PER_TENANT as f64);
                    }
                    for tenant in 0..tenants {
                        bus.push_batch(tenant, &arrivals).expect("queue has room");
                    }
                    fleet.drain_bus().expect("drain succeeds")
                });
            },
        );
    }
    group.finish();
}

/// Round latency, persistent pool versus per-round thread spawning, on
/// identical round code (`run_round` vs `run_round_spawning`): what the
/// parked workers buy on the round's critical path.
fn bench_pool_vs_spawn(c: &mut Criterion) {
    let mut group = c.benchmark_group("fleet_round_pool_vs_spawn");
    group.sample_size(10);
    // Force ≥ 2 so the comparison exercises real fan-out even on a 1-core
    // CI container (chunking is budget-driven, results stay identical).
    let workers = available_threads().max(2);
    let tenants = 250usize;
    for &mode in &["pool", "spawn"] {
        group.bench_with_input(BenchmarkId::new(mode, tenants), &mode, |b, &mode| {
            let mut fleet = build_fleet(tenants, 250);
            fleet.set_workers(workers);
            let mut round = 0u64;
            b.iter(|| {
                let now = 86_400.0 + 10.0 * round as f64;
                round += 1;
                if mode == "pool" {
                    fleet.run_round_uniform(now, 0).expect("round succeeds")
                } else {
                    let covered = vec![0usize; tenants];
                    fleet
                        .run_round_spawning(now, &covered)
                        .expect("round succeeds")
                }
            });
        });
    }
    group.finish();
}

/// Durable-state path: checkpoint (snapshot + serialize + atomic shard
/// writes) and restore (read + checksum-verify + deserialize + forecast
/// cache rebuild) of a warm fleet, sharded at the default group size.
fn bench_fleet_checkpoint(c: &mut Criterion) {
    let mut group = c.benchmark_group("fleet_checkpoint");
    group.sample_size(10);
    let dir = std::env::temp_dir().join(format!("robustscaler-bench-ckpt-{}", std::process::id()));
    for &tenants in &[100usize, 250] {
        let mut fleet = build_fleet(tenants, 250);
        fleet.set_workers(1);
        // A planned round so snapshots carry live RNG/cache state, as in
        // production — an idle fleet would checkpoint unrealistically fast.
        fleet
            .run_round_uniform(86_400.0, 0)
            .expect("round succeeds");
        group.bench_with_input(BenchmarkId::new("write", tenants), &tenants, |b, _| {
            b.iter(|| {
                // Force-dirty every tenant so this measures a *full*
                // rewrite (comparable to the PR 4 baseline) — otherwise
                // the incremental path would reuse every shard after the
                // first iteration.
                for index in 0..fleet.len() {
                    fleet.tenant_mut(index);
                }
                fleet.checkpoint(&dir).expect("checkpoint succeeds")
            });
        });
        group.bench_with_input(
            BenchmarkId::new("write_incremental", tenants),
            &tenants,
            |b, _| {
                // Steady-state incremental checkpoint of an idle fleet:
                // every shard is clean and reused (hard-linked), the upper
                // bound of what dirty tracking saves.
                fleet.checkpoint(&dir).expect("checkpoint succeeds");
                b.iter(|| fleet.checkpoint(&dir).expect("checkpoint succeeds"));
            },
        );
        fleet.checkpoint(&dir).expect("checkpoint succeeds");
        let config = fleet.tenant(0).expect("tenant 0").scaler.config();
        let config = *config;
        group.bench_with_input(BenchmarkId::new("restore", tenants), &tenants, |b, _| {
            b.iter(|| TenantFleet::restore(&dir, &config).expect("restore succeeds"));
        });
        let _ = std::fs::remove_dir_all(&dir);
    }
    group.finish();
}

/// The hibernating-tier contract: round latency is driven by *active*
/// tenants, not *registered* ones. `round_100k_registered_1k_active`
/// runs a fleet with 100k cold-registered tenants of which 1k are hot
/// (warm models installed); `round_1k_resident` is the reference fleet
/// holding only those 1k tenants. The acceptance bar is the big fleet's
/// round staying within 2x of the reference. `page_in` is the latency
/// of waking one hibernated tenant from its page file (read +
/// checksum + parse + scaler rebuild) — the cold-start tax of the tier.
fn bench_fleet_hibernation(c: &mut Criterion) {
    use robustscaler_online::{HibernationStore, OnlineScaler, ResidencyConfig};

    let mut group = c.benchmark_group("fleet_hibernation");
    group.sample_size(10);
    let registered = 100_000usize;
    let active = 1_000usize;

    let residency = ResidencyConfig {
        cold_after: 3,
        idle_epsilon: 1e-9,
        start_cold: true,
    };
    let warm = |fleet: &mut TenantFleet, tenants: usize| {
        for index in 0..tenants {
            let base = 0.5 + 2.0 * (index as f64 / tenants.max(2) as f64);
            let log_rates = vec![base.ln(); 1_440];
            let model =
                NhppModel::from_log_rates(0.0, 60.0, log_rates, Some(1_440)).expect("model");
            fleet
                .tenant_mut(index)
                .expect("index in range")
                .scaler
                .install_model(model, 0.0)
                .expect("install");
        }
    };

    let mut pipeline =
        RobustScalerConfig::for_variant(RobustScalerVariant::HittingProbability { target: 0.9 });
    pipeline.planning_interval = 10.0;
    pipeline.monte_carlo_samples = 250;
    pipeline.mean_processing = 20.0;
    let config = OnlineConfig::new(pipeline);

    let mut big = TenantFleet::new_cold(&config, 0.0, registered, 7, residency).expect("fleet");
    big.set_workers(1);
    warm(&mut big, active);
    group.bench_function(
        BenchmarkId::new("round_100k_registered_1k_active", registered),
        |b| {
            let mut round = 0u64;
            b.iter(|| {
                let now = 86_400.0 + 10.0 * round as f64;
                round += 1;
                big.run_round_uniform(now, 0).expect("round succeeds")
            });
        },
    );
    drop(big);

    let mut reference = build_fleet(active, 250);
    reference.set_workers(1);
    group.bench_function(BenchmarkId::new("round_1k_resident", active), |b| {
        let mut round = 0u64;
        b.iter(|| {
            let now = 86_400.0 + 10.0 * round as f64;
            round += 1;
            reference.run_round_uniform(now, 0).expect("round succeeds")
        });
    });
    drop(reference);

    // Page-in latency: one hibernated tenant's wake path — page read,
    // checksum verify, JSON parse, scaler rebuild (forecast cache
    // recompute included), exactly what a Wake{Arrival} pays in-round.
    let dir = std::env::temp_dir().join(format!("robustscaler-bench-pages-{}", std::process::id()));
    let store = HibernationStore::new(&dir);
    let scaler = {
        let mut fleet = build_fleet(1, 250);
        fleet
            .run_round_uniform(86_400.0, 0)
            .expect("round succeeds");
        fleet.tenant(0).expect("tenant 0").scaler.snapshot()
    };
    let receipt = store.page_out(0, &scaler).expect("page out");
    let scaler_config = config;
    group.bench_function(BenchmarkId::new("page_in", 1), |b| {
        b.iter(|| {
            let snapshot = store.page_in(0, receipt).expect("page in");
            OnlineScaler::restore(snapshot, scaler_config).expect("restore")
        });
    });
    let _ = std::fs::remove_dir_all(&dir);
    group.finish();
}

criterion_group!(
    benches,
    bench_fleet_round,
    bench_fleet_round_batched,
    bench_fleet_round_parallel,
    bench_ingest_throughput,
    bench_pool_vs_spawn,
    bench_fleet_checkpoint,
    bench_fleet_hibernation
);
criterion_main!(benches);
