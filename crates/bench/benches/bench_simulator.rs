//! Criterion bench: throughput of the scaling-per-query event simulator
//! (queries replayed per second) under the reactive, Backup Pool and
//! Adaptive Backup Pool policies.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use robustscaler_simulator::{
    AdaptiveBackupPool, BackupPool, PendingTimeDistribution, Query, Reactive, SimulationConfig,
    Simulator, Trace,
};

fn uniform_trace(n: usize) -> Trace {
    Trace::new(
        "bench",
        (0..n)
            .map(|i| Query {
                arrival: i as f64 * 3.0,
                processing: 5.0,
            })
            .collect(),
    )
    .unwrap()
}

fn bench_simulator_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator_throughput");
    let n = 20_000;
    let trace = uniform_trace(n);
    group.throughput(Throughput::Elements(n as u64));
    let sim = Simulator::new(SimulationConfig {
        pending: PendingTimeDistribution::Deterministic(13.0),
        seed: 1,
        recent_history_window: 600.0,
    })
    .unwrap();

    group.bench_with_input(BenchmarkId::new("reactive", n), &trace, |b, trace| {
        b.iter(|| {
            let mut policy = Reactive::new();
            sim.run(trace, &mut policy).unwrap()
        });
    });
    group.bench_with_input(BenchmarkId::new("backup_pool_8", n), &trace, |b, trace| {
        b.iter(|| {
            let mut policy = BackupPool::new(8);
            sim.run(trace, &mut policy).unwrap()
        });
    });
    group.bench_with_input(BenchmarkId::new("adaptive_bp", n), &trace, |b, trace| {
        b.iter(|| {
            let mut policy = AdaptiveBackupPool::new(30.0);
            sim.run(trace, &mut policy).unwrap()
        });
    });
    group.finish();
}

criterion_group!(benches, bench_simulator_throughput);
criterion_main!(benches);
