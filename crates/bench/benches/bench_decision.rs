//! Criterion bench: scaling-decision computation (paper Fig. 8's runtime
//! axis) — the sort-and-search Algorithm 3, the quantile rule of eq. (3),
//! and a full planning window as a function of QPS and of the Monte Carlo
//! sample count R.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use robustscaler_nhpp::PiecewiseConstantIntensity;
use robustscaler_scaling::{
    solve_waiting_root, ArrivalSampler, DecisionConfig, DecisionRule, PendingTimeModel,
    PlannerConfig, PlannerState, SequentialPlanner,
};

fn bench_sort_and_search(c: &mut Criterion) {
    let mut group = c.benchmark_group("sort_and_search_vs_samples");
    for &r in &[100usize, 1_000, 10_000] {
        let mut rng = StdRng::seed_from_u64(r as u64);
        let samples: Vec<(f64, f64)> = (0..r)
            .map(|_| (rng.gen_range(0.0..500.0), rng.gen_range(1.0..30.0)))
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(r), &samples, |b, samples| {
            b.iter(|| solve_waiting_root(samples, 3.0).unwrap());
        });
    }
    group.finish();
}

fn bench_single_decision(c: &mut Criterion) {
    let mut group = c.benchmark_group("hp_decision_vs_samples");
    let intensity = PiecewiseConstantIntensity::new(0.0, 1e6, vec![5.0]).unwrap();
    for &r in &[100usize, 1_000] {
        group.bench_with_input(BenchmarkId::from_parameter(r), &r, |b, &r| {
            let mut rng = StdRng::seed_from_u64(9);
            b.iter(|| {
                let sampler = ArrivalSampler::new(&intensity, 0.0, 5, r, &mut rng).unwrap();
                robustscaler_scaling::decisions::decide(
                    &sampler,
                    3,
                    &DecisionConfig {
                        rule: DecisionRule::HittingProbability { alpha: 0.1 },
                        pending: PendingTimeModel::Deterministic(13.0),
                        monte_carlo_samples: r,
                    },
                    &mut rng,
                )
                .unwrap()
            });
        });
    }
    group.finish();
}

fn bench_planning_window_vs_qps(c: &mut Criterion) {
    let mut group = c.benchmark_group("planning_window_vs_qps");
    group.sample_size(10);
    for &qps in &[1.0_f64, 10.0, 100.0] {
        let intensity = PiecewiseConstantIntensity::new(0.0, 1e6, vec![qps]).unwrap();
        let planner = SequentialPlanner::new(PlannerConfig {
            decision: DecisionConfig {
                rule: DecisionRule::HittingProbability { alpha: 0.1 },
                pending: PendingTimeModel::Deterministic(13.0),
                monte_carlo_samples: 300,
            },
            planning_interval: 5.0,
            max_decisions_per_round: 10_000,
        })
        .unwrap();
        group.bench_with_input(
            BenchmarkId::from_parameter(qps as u64),
            &intensity,
            |b, intensity| {
                let mut rng = StdRng::seed_from_u64(11);
                b.iter(|| {
                    planner
                        .plan_window(intensity, 0.0, PlannerState { covered: 0 }, &mut rng)
                        .unwrap()
                });
            },
        );
    }
    group.finish();
}

/// A full planning round at the paper's operating point (Fig. 8: R = 1000,
/// Δ such that ≈ 50 arrivals fall in the window) as a function of the Monte
/// Carlo replication count. This is the engine's end-to-end hot path and the
/// number tracked across PRs in `BENCH_decision.json`.
fn bench_plan_window(c: &mut Criterion) {
    let mut group = c.benchmark_group("plan_window");
    group.sample_size(10);
    // 5 QPS over a 10 s window: ≈ 50 expected arrivals per round; the 13 s
    // pending lead means the planner looks well past the initial horizon
    // guess, exercising the horizon-growth path.
    let intensity = PiecewiseConstantIntensity::new(0.0, 1e6, vec![5.0]).unwrap();
    for &r in &[250usize, 1_000, 4_000] {
        let planner = SequentialPlanner::new(PlannerConfig {
            decision: DecisionConfig {
                rule: DecisionRule::HittingProbability { alpha: 0.1 },
                pending: PendingTimeModel::Deterministic(13.0),
                monte_carlo_samples: r,
            },
            planning_interval: 10.0,
            max_decisions_per_round: 10_000,
        })
        .unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(r), &planner, |b, planner| {
            let mut rng = StdRng::seed_from_u64(17);
            b.iter(|| {
                planner
                    .plan_window(&intensity, 0.0, PlannerState { covered: 0 }, &mut rng)
                    .unwrap()
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_sort_and_search,
    bench_single_decision,
    bench_planning_window_vs_qps,
    bench_plan_window
);
criterion_main!(benches);
