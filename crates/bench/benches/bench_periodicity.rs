//! Criterion bench: robust periodicity detection cost as a function of the
//! series length (module 1 of the pipeline).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use robustscaler_timeseries::{detect_period, PeriodicityConfig, TimeSeries};

fn noisy_periodic_series(n: usize, period: usize, seed: u64) -> TimeSeries {
    let mut rng = StdRng::seed_from_u64(seed);
    let values: Vec<f64> = (0..n)
        .map(|i| {
            let phase = std::f64::consts::TAU * (i % period) as f64 / period as f64;
            10.0 + 4.0 * phase.sin() + rng.gen_range(-1.0..1.0)
        })
        .collect();
    TimeSeries::from_values(0.0, 60.0, values).unwrap()
}

fn bench_periodicity_detection(c: &mut Criterion) {
    let mut group = c.benchmark_group("periodicity_detection_vs_length");
    for &n in &[1_000usize, 4_000, 10_000] {
        let series = noisy_periodic_series(n, 288, 3);
        group.bench_with_input(BenchmarkId::from_parameter(n), &series, |b, series| {
            b.iter(|| detect_period(series, &PeriodicityConfig::default()).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_periodicity_detection);
criterion_main!(benches);
