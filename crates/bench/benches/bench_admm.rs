//! Criterion bench: ADMM training cost as a function of the series length T
//! and the period length L, plus the banded-Cholesky vs conjugate-gradient
//! ablation for the r-subproblem (DESIGN.md ablation list).
//!
//! Backs the complexity discussion of paper §V (O(T·L²) per iteration) and
//! the training-time numbers of §VII-B2.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use robustscaler_nhpp::admm::{AdmmConfig, AdmmSolver, SubproblemSolver};
use robustscaler_stats::{DiscreteDistribution, Poisson};

fn synthetic_counts(t: usize, period: usize, seed: u64) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..t)
        .map(|i| {
            let phase = (i % period) as f64 / period as f64;
            let rate = 5.0 + 20.0 * (std::f64::consts::TAU * phase).sin().max(0.0);
            Poisson::new(rate).unwrap().sample(&mut rng) as f64
        })
        .collect()
}

fn bench_series_length(c: &mut Criterion) {
    let mut group = c.benchmark_group("admm_fit_vs_series_length");
    group.sample_size(10);
    for &t in &[250usize, 500, 1_000] {
        let counts = synthetic_counts(t, 100, 1);
        group.bench_with_input(BenchmarkId::from_parameter(t), &counts, |b, counts| {
            b.iter(|| {
                let solver = AdmmSolver::new(
                    counts.clone(),
                    60.0,
                    Some(100),
                    AdmmConfig {
                        max_iterations: 15,
                        ..AdmmConfig::default()
                    },
                )
                .unwrap();
                solver.fit().unwrap()
            });
        });
    }
    group.finish();
}

fn bench_solver_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("admm_subproblem_solver_ablation");
    group.sample_size(10);
    let t = 600;
    for &period in &[30usize, 150] {
        let counts = synthetic_counts(t, period, 2);
        for (name, solver_kind) in [
            ("banded", SubproblemSolver::BandedCholesky),
            ("cg", SubproblemSolver::ConjugateGradient),
        ] {
            group.bench_with_input(BenchmarkId::new(name, period), &counts, |b, counts| {
                b.iter(|| {
                    let solver = AdmmSolver::new(
                        counts.clone(),
                        60.0,
                        Some(period),
                        AdmmConfig {
                            max_iterations: 10,
                            solver: solver_kind,
                            ..AdmmConfig::default()
                        },
                    )
                    .unwrap();
                    solver.fit().unwrap()
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_series_length, bench_solver_ablation);
criterion_main!(benches);
