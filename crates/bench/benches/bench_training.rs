//! Criterion bench: end-to-end training of modules 1–3 (aggregation,
//! periodicity detection, ADMM fit) on the Google-like workload — the
//! "training time of modules 1-3" measurement of paper §VII-B2.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use robustscaler_core::{RobustScalerConfig, RobustScalerPipeline, RobustScalerVariant};
use robustscaler_traces::{google_like, ProcessingTimeModel, TraceConfig};

fn bench_pipeline_training(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline_training_vs_history_length");
    group.sample_size(10);
    for &hours in &[6u64, 12] {
        let trace = google_like(&TraceConfig {
            duration: hours as f64 * 3_600.0,
            traffic_scale: 0.4,
            processing: ProcessingTimeModel::Exponential { mean: 60.0 },
            seed: 5,
        });
        let mut config = RobustScalerConfig::for_variant(RobustScalerVariant::HittingProbability {
            target: 0.9,
        });
        config.mean_processing = 60.0;
        config.admm.max_iterations = 60;
        let pipeline = RobustScalerPipeline::new(config).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(hours), &trace, |b, trace| {
            b.iter(|| pipeline.train(trace).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_pipeline_training);
criterion_main!(benches);
