//! QoS and cost metrics of the scaling-per-query model (paper §VI-A).
//!
//! For query `i` with arrival time `ξ`, instance creation time `x`, pending
//! (startup) time `τ` and processing time `s`:
//!
//! * response time `RT = s + (τ − (ξ − x)⁺)⁺`,
//! * hit indicator `1{ξ > x + τ}` (the instance is ready on arrival),
//! * instance cost (lifecycle length) `(ξ − x − τ)⁺ + τ + s`.
//!
//! These closed forms assume the instance was actually created at `x ≤ ξ`;
//! when the policy never created an instance before the arrival the caller
//! passes `x = ξ` (create-on-arrival), and the formulas reduce to the
//! reactive cold-start case.

use crate::error::ScalingError;
use rand::Rng;
use robustscaler_stats::{ContinuousDistribution, LogNormal};
use serde::{Deserialize, Serialize};

/// Positive part `(v)⁺`.
#[inline]
pub fn positive_part(v: f64) -> f64 {
    v.max(0.0)
}

/// Response time of a query (paper's compact form
/// `RT_i = s_i + (τ_i − (ξ_i − x_i)⁺)⁺`).
pub fn response_time(arrival: f64, creation: f64, pending: f64, processing: f64) -> f64 {
    processing + positive_part(pending - positive_part(arrival - creation))
}

/// Whether the query hits a ready instance (`ξ > x + τ`).
pub fn hit(arrival: f64, creation: f64, pending: f64) -> bool {
    arrival > creation + pending
}

/// Lifecycle cost of the instance serving the query
/// (`cost_i = (ξ − x − τ)⁺ + τ + s`).
pub fn cost(arrival: f64, creation: f64, pending: f64, processing: f64) -> f64 {
    positive_part(arrival - creation - pending) + pending + processing
}

/// Per-query outcome bundling the three metrics.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QosOutcome {
    /// Response time in seconds.
    pub response_time: f64,
    /// Whether the instance was ready upon arrival.
    pub hit: bool,
    /// Lifecycle cost (seconds of instance lifetime).
    pub cost: f64,
    /// Idle time of the instance before the query arrived.
    pub idle_time: f64,
    /// Waiting time of the query before processing started.
    pub waiting_time: f64,
}

impl QosOutcome {
    /// Evaluate all metrics for one query. `creation` must not exceed
    /// `arrival` (the simulator caps it — an instance that was never
    /// pre-created is created exactly at the arrival).
    pub fn evaluate(arrival: f64, creation: f64, pending: f64, processing: f64) -> Self {
        debug_assert!(
            creation <= arrival + 1e-9,
            "creation {creation} must be <= arrival {arrival}"
        );
        Self {
            response_time: response_time(arrival, creation, pending, processing),
            hit: hit(arrival, creation, pending),
            cost: cost(arrival, creation, pending, processing),
            idle_time: positive_part(arrival - creation - pending),
            waiting_time: positive_part(pending - positive_part(arrival - creation)),
        }
    }
}

/// The pending (instance startup) time model used when planning.
///
/// The paper's experiments use a fixed pod pending time (13 s in the
/// scalability study); production startup times are heavy-tailed, so a
/// log-normal option is provided as well.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum PendingTimeModel {
    /// Deterministic pending time of the given length (seconds).
    Deterministic(f64),
    /// Log-normal pending time with the given mean and standard deviation.
    LogNormal {
        /// Mean pending time in seconds.
        mean: f64,
        /// Standard deviation of the pending time in seconds.
        std_dev: f64,
    },
}

impl PendingTimeModel {
    /// Validate the parameters.
    pub fn validate(&self) -> Result<(), ScalingError> {
        match self {
            PendingTimeModel::Deterministic(v) => {
                if !(*v >= 0.0) || !v.is_finite() {
                    return Err(ScalingError::InvalidParameter(
                        "deterministic pending time must be finite and >= 0",
                    ));
                }
            }
            PendingTimeModel::LogNormal { mean, std_dev } => {
                if !(*mean > 0.0) || !(*std_dev > 0.0) {
                    return Err(ScalingError::InvalidParameter(
                        "log-normal pending time needs mean > 0 and std_dev > 0",
                    ));
                }
            }
        }
        Ok(())
    }

    /// Expected pending time `µ_τ`.
    pub fn mean(&self) -> f64 {
        match self {
            PendingTimeModel::Deterministic(v) => *v,
            PendingTimeModel::LogNormal { mean, .. } => *mean,
        }
    }

    /// Draw one pending time.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        match self {
            PendingTimeModel::Deterministic(v) => *v,
            PendingTimeModel::LogNormal { mean, std_dev } => {
                LogNormal::from_mean_std(*mean, *std_dev)
                    .expect("validated parameters")
                    .sample(rng)
            }
        }
    }

    /// Draw `n` pending times.
    pub fn sample_n<R: Rng + ?Sized>(&self, rng: &mut R, n: usize) -> Vec<f64> {
        let mut out = Vec::new();
        self.sample_into(rng, n, &mut out);
        out
    }

    /// Draw `n` pending times into a reusable buffer (cleared first), so the
    /// per-decision hot loop neither allocates nor rebuilds the distribution
    /// per draw.
    pub fn sample_into<R: Rng + ?Sized>(&self, rng: &mut R, n: usize, out: &mut Vec<f64>) {
        out.clear();
        out.reserve(n);
        match self {
            PendingTimeModel::Deterministic(v) => out.extend(std::iter::repeat_n(*v, n)),
            PendingTimeModel::LogNormal { mean, std_dev } => {
                let distribution =
                    LogNormal::from_mean_std(*mean, *std_dev).expect("validated parameters");
                out.extend((0..n).map(|_| distribution.sample(rng)));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn response_time_covers_all_three_cases() {
        // Instance ready before arrival: RT = s.
        assert_eq!(response_time(100.0, 80.0, 10.0, 5.0), 5.0);
        // Instance pending on arrival: RT = x + τ − ξ + s.
        assert_eq!(response_time(100.0, 95.0, 10.0, 5.0), 10.0);
        // Instance created at arrival (reactive): RT = τ + s.
        assert_eq!(response_time(100.0, 100.0, 13.0, 5.0), 18.0);
    }

    #[test]
    fn hit_requires_ready_instance() {
        assert!(hit(100.0, 80.0, 10.0));
        assert!(!hit(100.0, 95.0, 10.0));
        assert!(!hit(100.0, 100.0, 0.1));
        // Boundary: arrival exactly at readiness is not a hit (strict >).
        assert!(!hit(100.0, 90.0, 10.0));
    }

    #[test]
    fn cost_adds_idle_time_to_the_fixed_part() {
        // Ready 10 s early: idle 10 s + pending 10 + processing 5.
        assert_eq!(cost(100.0, 80.0, 10.0, 5.0), 25.0);
        // Created at arrival: no idle time.
        assert_eq!(cost(100.0, 100.0, 10.0, 5.0), 15.0);
        // Pending when the query arrives: no idle time either.
        assert_eq!(cost(100.0, 95.0, 10.0, 5.0), 15.0);
    }

    #[test]
    fn outcome_is_consistent_across_fields() {
        let o = QosOutcome::evaluate(100.0, 70.0, 10.0, 5.0);
        assert!(o.hit);
        assert_eq!(o.response_time, 5.0);
        assert_eq!(o.idle_time, 20.0);
        assert_eq!(o.waiting_time, 0.0);
        assert_eq!(o.cost, 35.0);

        let o2 = QosOutcome::evaluate(100.0, 96.0, 10.0, 5.0);
        assert!(!o2.hit);
        assert_eq!(o2.waiting_time, 6.0);
        assert_eq!(o2.response_time, 11.0);
        assert_eq!(o2.idle_time, 0.0);
        // The identity RT = s + waiting always holds.
        assert_eq!(o2.response_time, 5.0 + o2.waiting_time);
    }

    #[test]
    fn pending_models_validate_and_sample() {
        assert!(PendingTimeModel::Deterministic(-1.0).validate().is_err());
        assert!(PendingTimeModel::LogNormal {
            mean: 0.0,
            std_dev: 1.0
        }
        .validate()
        .is_err());
        let det = PendingTimeModel::Deterministic(13.0);
        det.validate().unwrap();
        assert_eq!(det.mean(), 13.0);
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(det.sample(&mut rng), 13.0);

        let ln = PendingTimeModel::LogNormal {
            mean: 13.0,
            std_dev: 3.0,
        };
        ln.validate().unwrap();
        let samples = ln.sample_n(&mut rng, 50_000);
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        assert!((mean - 13.0).abs() < 0.2, "mean {mean}");
        assert!(samples.iter().all(|&t| t > 0.0));
    }
}
