//! Sort-and-search stochastic root finding (paper Algorithm 3).
//!
//! Two empirical functions of the creation time `x` appear in the decision
//! rules, both piecewise linear and monotone in `x` with breakpoints at the
//! Monte Carlo samples:
//!
//! * the expected waiting time
//!   `Ŵ(x) = (1/R) Σ_r (τ_r − (ξ_r − x)⁺)⁺` — non-decreasing in `x`
//!   (creating later means more waiting), slope `+1/R` after each
//!   `ξ_r − τ_r` and `−1/R` after each `ξ_r`;
//! * the expected idle cost
//!   `Ĉ(x) = (1/R) Σ_r (ξ_r − τ_r − x)⁺` — non-increasing in `x`
//!   (creating later means less idling), slope `−1/R` until each `ξ_r − τ_r`.
//!
//! Both roots are found by sorting the breakpoints once and sweeping the
//! linear pieces, i.e. `O(R log R)` — exactly Algorithm 3's complexity.

use crate::error::ScalingError;

/// Pending-time samples `τ_r` viewed as a column: either one constant shared
/// by every replication (the deterministic model — the common case, whose
/// solver inner loops vectorize) or a borrowed per-replication buffer.
#[derive(Debug, Clone, Copy)]
pub enum PendingColumn<'a> {
    /// Every replication has the same pending time.
    Constant(f64),
    /// Replication `r` has pending time `taus[r]`.
    PerReplication(&'a [f64]),
}

/// Internal view of the `(ξ_r, τ_r)` Monte Carlo samples. The root solvers
/// are generic over the storage so the decision hot path can feed flat
/// column buffers (an arrival row borrowed from the sampler matrix plus a
/// [`PendingColumn`]) while the pair-based public API keeps its shape; both
/// instantiations run identical arithmetic in identical order, so their
/// results are bit-for-bit equal for equal sample values.
trait SampleView {
    fn len(&self) -> usize;
    fn xi(&self, r: usize) -> f64;
    fn tau(&self, r: usize) -> f64;
}

impl SampleView for &[(f64, f64)] {
    #[inline]
    fn len(&self) -> usize {
        (**self).len()
    }
    #[inline]
    fn xi(&self, r: usize) -> f64 {
        self[r].0
    }
    #[inline]
    fn tau(&self, r: usize) -> f64 {
        self[r].1
    }
}

struct FlatSamples<'a> {
    xis: &'a [f64],
    taus: PendingColumn<'a>,
}

impl SampleView for FlatSamples<'_> {
    #[inline]
    fn len(&self) -> usize {
        self.xis.len()
    }
    #[inline]
    fn xi(&self, r: usize) -> f64 {
        self.xis[r]
    }
    #[inline]
    fn tau(&self, r: usize) -> f64 {
        match self.taus {
            PendingColumn::Constant(v) => v,
            PendingColumn::PerReplication(taus) => taus[r],
        }
    }
}

fn check_pending_column(xis: &[f64], taus: PendingColumn<'_>) -> Result<(), ScalingError> {
    if let PendingColumn::PerReplication(t) = taus {
        if t.len() != xis.len() {
            return Err(ScalingError::InvalidParameter(
                "pending-time column length must match the arrival column",
            ));
        }
    }
    Ok(())
}

/// Evaluate the empirical expected waiting time `Ŵ(x)` directly (O(R)).
/// Exposed for tests and calibration diagnostics.
pub fn empirical_waiting(samples: &[(f64, f64)], x: f64) -> f64 {
    // samples are (ξ_r, τ_r) pairs.
    let r = samples.len() as f64;
    samples
        .iter()
        .map(|&(xi, tau)| (tau - (xi - x).max(0.0)).max(0.0))
        .sum::<f64>()
        / r
}

/// Evaluate the empirical expected idle cost `Ĉ(x)` directly (O(R)).
pub fn empirical_idle_cost(samples: &[(f64, f64)], x: f64) -> f64 {
    idle_cost_at(&samples, x)
}

fn idle_cost_at<S: SampleView>(samples: &S, x: f64) -> f64 {
    let r = samples.len() as f64;
    (0..samples.len())
        .map(|i| (samples.xi(i) - samples.tau(i) - x).max(0.0))
        .sum::<f64>()
        / r
}

/// Solve `Ŵ(x) = target` for the *largest* such `x` when the target is
/// attainable (the latest creation time that still meets the expected
/// waiting-time budget, which is the cost-optimal choice of eq. 5).
///
/// Returns:
/// * `Ok(x)` with the root when `0 ≤ target ≤ max Ŵ`,
/// * `Ok(largest ξ sample)` when `target ≥ mean(τ)` (any sufficiently late
///   creation meets the budget; the paper's Algorithm 3 returns `ξ^{(R)}`),
/// * `Err(Infeasible)` when `target < 0` (impossible budget).
///
/// Allocates a 2R-element breakpoint buffer per call; planner-style loops
/// that solve many roots should hold a scratch buffer and call
/// [`solve_waiting_root_with`] instead.
pub fn solve_waiting_root(samples: &[(f64, f64)], target: f64) -> Result<f64, ScalingError> {
    let mut breakpoints = Vec::new();
    solve_waiting_root_with(samples, target, &mut breakpoints)
}

/// [`solve_waiting_root`] with a caller-provided breakpoint scratch buffer
/// (cleared and refilled on every call), so per-decision allocation drops to
/// zero once the buffer has grown to 2R entries.
pub fn solve_waiting_root_with(
    samples: &[(f64, f64)],
    target: f64,
    breakpoints: &mut Vec<(f64, f64)>,
) -> Result<f64, ScalingError> {
    waiting_root_impl(&samples, target, breakpoints)
}

/// [`solve_waiting_root_with`] over flat column buffers: the arrival samples
/// `ξ_r` are a borrowed row of the sampler matrix and the pending times come
/// from a [`PendingColumn`]. Bit-identical to the pair-based solver for the
/// same `(ξ_r, τ_r)` values, without materializing the pairs.
pub fn solve_waiting_root_flat(
    xis: &[f64],
    taus: PendingColumn<'_>,
    target: f64,
    breakpoints: &mut Vec<(f64, f64)>,
) -> Result<f64, ScalingError> {
    check_pending_column(xis, taus)?;
    waiting_root_impl(&FlatSamples { xis, taus }, target, breakpoints)
}

fn waiting_root_impl<S: SampleView>(
    samples: &S,
    target: f64,
    breakpoints: &mut Vec<(f64, f64)>,
) -> Result<f64, ScalingError> {
    let n = samples.len();
    if n == 0 {
        return Err(ScalingError::InvalidParameter(
            "at least one Monte Carlo sample is required",
        ));
    }
    if target < 0.0 {
        return Err(ScalingError::Infeasible(
            "expected waiting-time budget is negative",
        ));
    }
    let r = n as f64;
    // Breakpoints: +1/R slope change at ξ−τ, −1/R at ξ.
    breakpoints.clear();
    breakpoints.reserve(n * 2);
    for i in 0..n {
        let (xi, tau) = (samples.xi(i), samples.tau(i));
        breakpoints.push((xi - tau, 1.0 / r));
        breakpoints.push((xi, -1.0 / r));
    }
    breakpoints.sort_unstable_by(|a, b| a.0.partial_cmp(&b.0).expect("finite breakpoints"));

    let max_value = (0..n).map(|i| samples.tau(i)).sum::<f64>() / r;
    if target >= max_value {
        // Any x beyond the largest arrival sample attains the maximum; the
        // paper returns ξ^{(R)}.
        let largest_xi = (0..n)
            .map(|i| samples.xi(i))
            .fold(f64::NEG_INFINITY, f64::max);
        return Ok(largest_xi);
    }

    // Sweep the linear pieces left to right.
    let mut slope = 0.0;
    let mut value = 0.0;
    let mut x_prev = breakpoints[0].0;
    if target == 0.0 {
        return Ok(x_prev);
    }
    for &(x_bp, slope_delta) in breakpoints.iter() {
        let value_next = value + slope * (x_bp - x_prev);
        if value < target && target <= value_next {
            // The root lies inside this piece.
            return Ok(x_prev + (target - value) / slope);
        }
        value = value_next;
        slope += slope_delta;
        x_prev = x_bp;
    }
    // target < max_value guarantees the loop found the piece; reaching here
    // means floating-point slack — return the last breakpoint.
    Ok(x_prev)
}

/// Solve `Ĉ(x) = target` for the unique root of the non-increasing idle-cost
/// function (the latest creation time whose expected idle stays within the
/// budget of eq. 7; callers clamp the result to "now").
///
/// Returns `Err(Infeasible)` when `target < 0`; any non-negative budget has a
/// root because `Ĉ` decreases with slope −1 for creation times before every
/// breakpoint and reaches 0 at the largest breakpoint.
///
/// Allocates an R-element breakpoint buffer per call; planner-style loops
/// should hold a scratch buffer and call [`solve_idle_cost_root_with`].
pub fn solve_idle_cost_root(samples: &[(f64, f64)], target: f64) -> Result<f64, ScalingError> {
    let mut points = Vec::new();
    solve_idle_cost_root_with(samples, target, &mut points)
}

/// [`solve_idle_cost_root`] with a caller-provided breakpoint scratch buffer
/// (cleared and refilled on every call).
pub fn solve_idle_cost_root_with(
    samples: &[(f64, f64)],
    target: f64,
    points: &mut Vec<f64>,
) -> Result<f64, ScalingError> {
    idle_cost_root_impl(&samples, target, points)
}

/// [`solve_idle_cost_root_with`] over flat column buffers; see
/// [`solve_waiting_root_flat`] for the storage contract.
pub fn solve_idle_cost_root_flat(
    xis: &[f64],
    taus: PendingColumn<'_>,
    target: f64,
    points: &mut Vec<f64>,
) -> Result<f64, ScalingError> {
    check_pending_column(xis, taus)?;
    idle_cost_root_impl(&FlatSamples { xis, taus }, target, points)
}

fn idle_cost_root_impl<S: SampleView>(
    samples: &S,
    target: f64,
    points: &mut Vec<f64>,
) -> Result<f64, ScalingError> {
    let n = samples.len();
    if n == 0 {
        return Err(ScalingError::InvalidParameter(
            "at least one Monte Carlo sample is required",
        ));
    }
    if target < 0.0 {
        return Err(ScalingError::Infeasible("idle-cost budget is negative"));
    }
    // Breakpoints of Ĉ: slope is −(#{ξ_r − τ_r > x})/R, increasing by 1/R as
    // x passes each ξ_r − τ_r.
    points.clear();
    points.reserve(n);
    points.extend((0..n).map(|i| samples.xi(i) - samples.tau(i)));
    points.sort_unstable_by(|a, b| a.partial_cmp(b).expect("finite breakpoints"));
    let r = n as f64;

    let first = points[0];
    let value_at_first = idle_cost_at(samples, first);
    if target >= value_at_first {
        // The root lies left of the earliest breakpoint, where Ĉ has slope −1
        // (every sample contributes ξ_r − τ_r − x).
        return Ok(first - (target - value_at_first));
    }
    // Ĉ decreases from value_at_first to 0 at the largest breakpoint; sweep.
    let mut value = value_at_first;
    let mut x_prev = first;
    for (k, &x_bp) in points.iter().enumerate().skip(1) {
        // On (points[k-1], points[k]) the slope is −(R − k)/R.
        let slope = -((r - k as f64) / r);
        let value_next = value + slope * (x_bp - x_prev);
        if value_next <= target && target <= value {
            return Ok(x_prev + (target - value) / slope);
        }
        value = value_next;
        x_prev = x_bp;
    }
    // target < Ĉ(largest breakpoint) = 0 cannot happen for target >= 0.
    Ok(x_prev)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_samples(n: usize, seed: u64) -> Vec<(f64, f64)> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let xi = rng.gen_range(0.0..300.0);
                let tau = rng.gen_range(1.0..30.0);
                (xi, tau)
            })
            .collect()
    }

    #[test]
    fn rejects_empty_samples_and_negative_targets() {
        assert!(solve_waiting_root(&[], 1.0).is_err());
        assert!(solve_idle_cost_root(&[], 1.0).is_err());
        let samples = random_samples(10, 1);
        assert!(matches!(
            solve_waiting_root(&samples, -0.1),
            Err(ScalingError::Infeasible(_))
        ));
        assert!(matches!(
            solve_idle_cost_root(&samples, -0.1),
            Err(ScalingError::Infeasible(_))
        ));
    }

    #[test]
    fn waiting_root_matches_direct_evaluation() {
        for seed in 0..5_u64 {
            let samples = random_samples(500, seed);
            let mean_tau = samples.iter().map(|&(_, t)| t).sum::<f64>() / samples.len() as f64;
            for &frac in &[0.05, 0.2, 0.5, 0.8, 0.95] {
                let target = frac * mean_tau;
                let x = solve_waiting_root(&samples, target).unwrap();
                let achieved = empirical_waiting(&samples, x);
                assert!(
                    (achieved - target).abs() < 1e-9,
                    "seed {seed} frac {frac}: target {target}, achieved {achieved}"
                );
            }
        }
    }

    #[test]
    fn waiting_root_handles_extreme_targets() {
        let samples = random_samples(100, 7);
        let mean_tau = samples.iter().map(|&(_, t)| t).sum::<f64>() / samples.len() as f64;
        // Slack budget: return the largest arrival sample.
        let largest_xi = samples.iter().map(|&(x, _)| x).fold(f64::MIN, f64::max);
        assert_eq!(
            solve_waiting_root(&samples, mean_tau * 2.0).unwrap(),
            largest_xi
        );
        // Zero budget: the earliest breakpoint (minimal ξ − τ).
        let x0 = solve_waiting_root(&samples, 0.0).unwrap();
        assert!(empirical_waiting(&samples, x0) < 1e-12);
    }

    #[test]
    fn idle_cost_root_matches_direct_evaluation() {
        for seed in 10..15_u64 {
            let samples = random_samples(400, seed);
            let max_cost = empirical_idle_cost(
                &samples,
                samples
                    .iter()
                    .map(|&(x, t)| x - t)
                    .fold(f64::INFINITY, f64::min),
            );
            for &frac in &[0.1, 0.3, 0.6, 0.9] {
                let target = frac * max_cost;
                let x = solve_idle_cost_root(&samples, target).unwrap();
                let achieved = empirical_idle_cost(&samples, x);
                assert!(
                    (achieved - target).abs() < 1e-9,
                    "seed {seed} frac {frac}: target {target}, achieved {achieved}"
                );
            }
        }
    }

    #[test]
    fn idle_cost_root_left_of_the_first_breakpoint_is_exact() {
        let samples = random_samples(50, 20);
        // A budget larger than Ĉ at the earliest breakpoint places the root in
        // the slope −1 region; the achieved idle cost must still match.
        let earliest = samples
            .iter()
            .map(|&(x, t)| x - t)
            .fold(f64::INFINITY, f64::min);
        let budget = empirical_idle_cost(&samples, earliest) + 42.0;
        let x = solve_idle_cost_root(&samples, budget).unwrap();
        assert!(x < earliest);
        assert!((empirical_idle_cost(&samples, x) - budget).abs() < 1e-9);
    }

    #[test]
    fn waiting_function_is_monotone_nondecreasing() {
        let samples = random_samples(200, 30);
        let mut prev = -1.0;
        for i in 0..100 {
            let x = -50.0 + i as f64 * 5.0;
            let v = empirical_waiting(&samples, x);
            assert!(v + 1e-12 >= prev);
            prev = v;
        }
    }

    #[test]
    fn idle_cost_function_is_monotone_nonincreasing() {
        let samples = random_samples(200, 31);
        let mut prev = f64::INFINITY;
        for i in 0..100 {
            let x = -50.0 + i as f64 * 5.0;
            let v = empirical_idle_cost(&samples, x);
            assert!(v <= prev + 1e-12);
            prev = v;
        }
    }

    #[test]
    fn scratch_variants_match_the_allocating_wrappers() {
        let mut breakpoints = Vec::new();
        let mut points = Vec::new();
        for seed in 40..44_u64 {
            let samples = random_samples(300, seed);
            for &target in &[0.5, 3.0, 11.0] {
                assert_eq!(
                    solve_waiting_root_with(&samples, target, &mut breakpoints).unwrap(),
                    solve_waiting_root(&samples, target).unwrap()
                );
                assert_eq!(
                    solve_idle_cost_root_with(&samples, target, &mut points).unwrap(),
                    solve_idle_cost_root(&samples, target).unwrap()
                );
            }
        }
        // The reused buffers hold exactly the last call's breakpoints.
        assert_eq!(breakpoints.len(), 600);
        assert_eq!(points.len(), 300);
    }

    #[test]
    fn flat_variants_match_the_pair_based_solvers_bit_for_bit() {
        let mut breakpoints = Vec::new();
        let mut points = Vec::new();
        for seed in 50..54_u64 {
            let samples = random_samples(250, seed);
            let xis: Vec<f64> = samples.iter().map(|&(x, _)| x).collect();
            let taus: Vec<f64> = samples.iter().map(|&(_, t)| t).collect();
            let const_samples: Vec<(f64, f64)> = xis.iter().map(|&x| (x, 13.0)).collect();
            for &target in &[0.5, 3.0, 11.0] {
                assert_eq!(
                    solve_waiting_root_flat(
                        &xis,
                        PendingColumn::PerReplication(&taus),
                        target,
                        &mut breakpoints
                    )
                    .unwrap(),
                    solve_waiting_root(&samples, target).unwrap()
                );
                assert_eq!(
                    solve_idle_cost_root_flat(
                        &xis,
                        PendingColumn::PerReplication(&taus),
                        target,
                        &mut points
                    )
                    .unwrap(),
                    solve_idle_cost_root(&samples, target).unwrap()
                );
                assert_eq!(
                    solve_waiting_root_flat(
                        &xis,
                        PendingColumn::Constant(13.0),
                        target,
                        &mut breakpoints
                    )
                    .unwrap(),
                    solve_waiting_root(&const_samples, target).unwrap()
                );
                assert_eq!(
                    solve_idle_cost_root_flat(
                        &xis,
                        PendingColumn::Constant(13.0),
                        target,
                        &mut points
                    )
                    .unwrap(),
                    solve_idle_cost_root(&const_samples, target).unwrap()
                );
            }
        }
        assert!(solve_waiting_root_flat(
            &[1.0, 2.0],
            PendingColumn::PerReplication(&[1.0]),
            0.5,
            &mut breakpoints
        )
        .is_err());
    }

    #[test]
    fn deterministic_single_sample_has_exact_roots() {
        // One sample: ξ = 100, τ = 10.
        let samples = vec![(100.0, 10.0)];
        // Waiting budget 4 s: x = ξ − τ + 4 = 94.
        assert!((solve_waiting_root(&samples, 4.0).unwrap() - 94.0).abs() < 1e-12);
        // Idle budget 25 s: x = ξ − τ − 25 = 65.
        assert!((solve_idle_cost_root(&samples, 25.0).unwrap() - 65.0).abs() < 1e-12);
    }
}
