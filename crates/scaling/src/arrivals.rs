//! Monte Carlo sampling of the time of the i-th upcoming arrival.
//!
//! Under an NHPP with intensity `λ(t)` and current time `t₀`, the time
//! rescaling theorem gives `ξ_i = Λ⁻¹(t₀, γ_i)` where `γ_i ~ Gamma(i, 1)`.
//! The decision rules of paper eqs. (3), (5) and (7) only need Monte Carlo
//! samples of `ξ_i` (jointly across `i` for efficiency): sampling the whole
//! path of standard-exponential increments and transforming it through the
//! inverse integrated intensity yields exactly that.
//!
//! # Engine layout
//!
//! This is the hottest data structure of the whole system (Fig. 8 plots the
//! planner's runtime against QPS, and every planning round rebuilds or
//! extends a sampler), so its representation is chosen for the access
//! pattern of the decision rules:
//!
//! * **Flat, arrival-major storage.** All `R × horizon` samples live in one
//!   contiguous matrix with the samples of one arrival index stored
//!   consecutively, so [`ArrivalSampler::arrival_samples`] is a zero-copy
//!   `&[f64]` slice — the decision rules iterate it without any per-call
//!   allocation, and growing the horizon appends whole columns in place.
//! * **Per-path RNG streams.** Each replication path draws its exponential
//!   increments from its own deterministic stream, split off the caller's
//!   RNG via a single SplitMix64 jump per path. Sampling is therefore
//!   embarrassingly parallel *and* byte-identical no matter how many worker
//!   threads run, and a horizon extension continues exactly the stream a
//!   full-horizon sampler would have used — `new(h₂)` equals
//!   `new(h₁)` + [`ArrivalSampler::extend_horizon`]`(h₂)` sample for sample.
//! * **Monotone inverse cursors.** The cumulative mass within a path never
//!   decreases, so each path keeps a resumable bucket hint and inverts via
//!   [`Intensity::inverse_integrated_hinted`] — an O(1) amortized forward
//!   scan instead of a per-arrival binary search over the intensity buckets.

use crate::error::ScalingError;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use robustscaler_nhpp::{Intensity, InverseHint};

/// Fixed increment of the SplitMix64 sequence; adding multiples of it to the
/// base seed before the generator's own SplitMix64 expansion hands each path
/// the state of a distinct step of that sequence — well-mixed, collision-free
/// per-path seeds.
const SEED_STREAM_INCREMENT: u64 = 0x9E37_79B9_7F4A_7C15;

/// Minimum number of samples a worker thread must have to generate before
/// spawning threads pays for itself (thread startup is ~10 µs; one sample is
/// ~10 ns of RNG plus a log and an inversion step).
const MIN_SAMPLES_PER_THREAD: usize = 8_192;

/// Per-replication generator state, retained so the horizon can be extended
/// by continuing each path instead of resampling from scratch.
#[derive(Debug, Clone)]
struct PathState {
    /// The path's private RNG stream.
    rng: StdRng,
    /// Cumulative standard-exponential mass `γ` drawn so far.
    cumulative: f64,
    /// Last emitted arrival time (monotonicity guard).
    previous: f64,
    /// Resumable state of the monotone inverse cursor.
    hint: InverseHint,
}

/// Samples of upcoming arrival times relative to a fixed "now".
#[derive(Debug, Clone)]
pub struct ArrivalSampler {
    /// Arrival-major sample matrix: `data[k * replications + r]` is the r-th
    /// Monte Carlo sample of the (k+1)-th upcoming arrival time (absolute).
    data: Vec<f64>,
    replications: usize,
    horizon: usize,
    now: f64,
    paths: Vec<PathState>,
}

impl ArrivalSampler {
    /// Draw `replications` Monte Carlo paths of the next `horizon_arrivals`
    /// arrival times after `now` under the forecast `intensity`.
    ///
    /// Only one `u64` is drawn from `rng`: it seeds the per-path streams, so
    /// the samples are fully determined by that draw regardless of thread
    /// count or later horizon extensions.
    pub fn new<I, R>(
        intensity: &I,
        now: f64,
        horizon_arrivals: usize,
        replications: usize,
        rng: &mut R,
    ) -> Result<Self, ScalingError>
    where
        I: Intensity + Sync,
        R: Rng + ?Sized,
    {
        if horizon_arrivals == 0 {
            return Err(ScalingError::InvalidParameter(
                "horizon_arrivals must be >= 1",
            ));
        }
        if replications == 0 {
            return Err(ScalingError::InvalidParameter("replications must be >= 1"));
        }
        let base_seed: u64 = rng.gen();
        // Prime one inverse cursor at `now` and start every path from a copy:
        // the bucket search that locates `now`'s linear piece of the
        // integrated intensity then runs once per sampler instead of once per
        // path. Bit-identical to starting from `InverseHint::default()` — the
        // cached piece inverts with the same arithmetic the slow path uses,
        // and a path whose first goal misses the primed piece simply takes
        // the slow path exactly as it would have.
        let mut template_hint = InverseHint::default();
        intensity.inverse_integrated_hinted(now, f64::MIN_POSITIVE, &mut template_hint);
        let paths = (0..replications)
            .map(|r| PathState {
                rng: StdRng::seed_from_u64(
                    base_seed.wrapping_add((r as u64).wrapping_mul(SEED_STREAM_INCREMENT)),
                ),
                cumulative: 0.0,
                previous: now,
                hint: template_hint,
            })
            .collect();
        let mut sampler = Self {
            data: Vec::new(),
            replications,
            horizon: 0,
            now,
            paths,
        };
        sampler.fill_columns(intensity, horizon_arrivals);
        Ok(sampler)
    }

    /// Continue every path up to `new_horizon` upcoming arrivals, reusing
    /// all previously sampled arrivals (a no-op when the horizon already
    /// covers `new_horizon`).
    ///
    /// `intensity` must be the same forecast the sampler was built from:
    /// the retained per-path state (cumulative mass, inverse cursors) is
    /// only meaningful under it. The extension draws nothing from the
    /// caller's RNG — each path continues its own stream, so
    /// `new(h₁)` + `extend_horizon(h₂)` produces exactly the samples of a
    /// direct `new(h₂)` with the same seed.
    pub fn extend_horizon<I>(&mut self, intensity: &I, new_horizon: usize)
    where
        I: Intensity + Sync,
    {
        if new_horizon > self.horizon {
            self.fill_columns(intensity, new_horizon);
        }
    }

    /// Sample columns `self.horizon..new_horizon` and append them to the
    /// matrix, advancing every path's retained state.
    fn fill_columns<I>(&mut self, intensity: &I, new_horizon: usize)
    where
        I: Intensity + Sync + ?Sized,
    {
        let first = self.horizon;
        let count = new_horizon - first;
        let replications = self.replications;
        let now = self.now;
        self.data.resize(new_horizon * replications, 0.0);

        let threads = available_threads_for(replications * count);
        if threads == 1 {
            // Serial: write straight into the arrival-major matrix. The
            // strided stores stay cache-resident because consecutive paths
            // share each column cacheline and one path touches only
            // `count` lines (≤ a few KB for realistic horizons).
            let data = &mut self.data;
            for (r, path) in self.paths.iter_mut().enumerate() {
                let mut slot = first * replications + r;
                sample_row(intensity, now, count, path, |_, t| {
                    data[slot] = t;
                    slot += replications;
                });
            }
        } else {
            // Parallel: workers generate into row-major per-chunk buffers
            // (each path's new arrivals contiguous) so the expensive part —
            // RNG, log, inversion — parallelizes without sharing the matrix;
            // the transpose into arrival-major storage happens on the
            // calling thread. Per-path RNG streams keep the output identical
            // for any worker count.
            let chunks =
                robustscaler_parallel::map_chunks_mut(&mut self.paths, threads, |_, chunk| {
                    let mut rows = vec![0.0_f64; chunk.len() * count];
                    for (i, path) in chunk.iter_mut().enumerate() {
                        let row = &mut rows[i * count..(i + 1) * count];
                        sample_row(intensity, now, count, path, |k, t| row[k] = t);
                    }
                    rows
                });

            // Transpose the row-major worker buffers into the arrival-major
            // matrix in path tiles: within one tile the source rows stay
            // resident in L1 across all columns, instead of every read
            // touching a cold cacheline.
            const TILE_PATHS: usize = 16;
            let mut r0 = 0;
            for rows in chunks {
                let chunk_paths = rows.len() / count;
                for i0 in (0..chunk_paths).step_by(TILE_PATHS) {
                    let i1 = (i0 + TILE_PATHS).min(chunk_paths);
                    for k in 0..count {
                        let column = &mut self.data[(first + k) * replications..][..replications];
                        for i in i0..i1 {
                            column[r0 + i] = rows[i * count + k];
                        }
                    }
                }
                r0 += chunk_paths;
            }
        }
        self.horizon = new_horizon;
    }

    /// The planning time `t₀`.
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Number of Monte Carlo replications.
    pub fn replications(&self) -> usize {
        self.replications
    }

    /// Number of upcoming arrivals covered per replication.
    pub fn horizon_arrivals(&self) -> usize {
        self.horizon
    }

    /// The Monte Carlo samples of the `index`-th upcoming arrival
    /// (1-based, matching the paper's `ξ_i`) — a zero-copy view into the
    /// sampler's matrix.
    pub fn arrival_samples(&self, index: usize) -> Result<&[f64], ScalingError> {
        if index == 0 || index > self.horizon {
            return Err(ScalingError::InvalidParameter(
                "arrival index outside the sampled horizon",
            ));
        }
        Ok(&self.data[(index - 1) * self.replications..][..self.replications])
    }

    /// Mean of the `index`-th upcoming arrival time.
    pub fn mean_arrival(&self, index: usize) -> Result<f64, ScalingError> {
        let samples = self.arrival_samples(index)?;
        Ok(samples.iter().sum::<f64>() / samples.len() as f64)
    }
}

/// How many worker threads to use for generating `samples` samples.
fn available_threads_for(samples: usize) -> usize {
    (samples / MIN_SAMPLES_PER_THREAD).clamp(1, robustscaler_parallel::available_threads())
}

/// Sample one path's next `count` arrivals, continuing its retained state
/// and handing each `(column, arrival_time)` to `emit`.
#[inline]
fn sample_row<I: Intensity + ?Sized>(
    intensity: &I,
    now: f64,
    count: usize,
    path: &mut PathState,
    mut emit: impl FnMut(usize, f64),
) {
    for k in 0..count {
        let u: f64 = path.rng.gen();
        path.cumulative += -(1.0 - u).ln();
        // Λ⁻¹ is evaluated from `now` with the cumulative mass so the
        // per-step numerical error does not accumulate.
        let t = intensity.inverse_integrated_hinted(now, path.cumulative, &mut path.hint);
        let t = if t.is_finite() { t } else { f64::MAX / 4.0 };
        // Monotonicity guard against numerical jitter.
        let t = t.max(path.previous);
        path.previous = t;
        emit(k, t);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use robustscaler_nhpp::PiecewiseConstantIntensity;
    use robustscaler_stats::{ContinuousDistribution, Gamma};

    fn constant_intensity(rate: f64) -> PiecewiseConstantIntensity {
        PiecewiseConstantIntensity::new(0.0, 1_000_000.0, vec![rate]).unwrap()
    }

    #[test]
    fn rejects_degenerate_parameters() {
        let intensity = constant_intensity(1.0);
        let mut rng = StdRng::seed_from_u64(1);
        assert!(ArrivalSampler::new(&intensity, 0.0, 0, 10, &mut rng).is_err());
        assert!(ArrivalSampler::new(&intensity, 0.0, 10, 0, &mut rng).is_err());
    }

    #[test]
    fn constant_rate_arrivals_follow_gamma_distribution() {
        // Under rate λ, ξ_i − t₀ ~ Gamma(i, 1/λ).
        let rate = 0.5;
        let intensity = constant_intensity(rate);
        let mut rng = StdRng::seed_from_u64(2);
        let sampler = ArrivalSampler::new(&intensity, 100.0, 5, 40_000, &mut rng).unwrap();
        assert_eq!(sampler.replications(), 40_000);
        assert_eq!(sampler.horizon_arrivals(), 5);
        assert_eq!(sampler.now(), 100.0);
        for i in [1usize, 3, 5] {
            let gamma = Gamma::new(i as f64, 1.0 / rate).unwrap();
            let mean = sampler.mean_arrival(i).unwrap() - 100.0;
            assert!(
                (mean - gamma.mean()).abs() / gamma.mean() < 0.03,
                "i={i}: mean {mean} vs {}",
                gamma.mean()
            );
            // Check a couple of quantiles as well.
            let mut samples: Vec<f64> = sampler
                .arrival_samples(i)
                .unwrap()
                .iter()
                .map(|t| t - 100.0)
                .collect();
            samples.sort_unstable_by(|a, b| a.partial_cmp(b).unwrap());
            for &p in &[0.1, 0.5, 0.9] {
                let empirical = samples[(p * samples.len() as f64) as usize];
                let theoretical = gamma.quantile(p);
                assert!(
                    (empirical - theoretical).abs() / theoretical < 0.05,
                    "i={i} p={p}: {empirical} vs {theoretical}"
                );
            }
        }
    }

    #[test]
    fn arrival_order_is_preserved_within_each_path() {
        let intensity =
            PiecewiseConstantIntensity::new(0.0, 50.0, vec![0.01, 2.0, 0.3, 1.0]).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let sampler = ArrivalSampler::new(&intensity, 10.0, 20, 200, &mut rng).unwrap();
        for r in 0..200 {
            let path: Vec<f64> = (1..=20)
                .map(|i| sampler.arrival_samples(i).unwrap()[r])
                .collect();
            for w in path.windows(2) {
                assert!(w[1] >= w[0]);
            }
            assert!(path[0] >= 10.0);
        }
    }

    #[test]
    fn later_indices_arrive_later_in_expectation() {
        let intensity = constant_intensity(2.0);
        let mut rng = StdRng::seed_from_u64(4);
        let sampler = ArrivalSampler::new(&intensity, 0.0, 10, 5_000, &mut rng).unwrap();
        let mut prev = 0.0;
        for i in 1..=10 {
            let mean = sampler.mean_arrival(i).unwrap();
            assert!(mean > prev);
            prev = mean;
        }
    }

    #[test]
    fn out_of_range_index_is_rejected() {
        let intensity = constant_intensity(1.0);
        let mut rng = StdRng::seed_from_u64(5);
        let sampler = ArrivalSampler::new(&intensity, 0.0, 3, 10, &mut rng).unwrap();
        assert!(sampler.arrival_samples(0).is_err());
        assert!(sampler.arrival_samples(4).is_err());
        assert!(sampler.arrival_samples(3).is_ok());
    }

    #[test]
    fn vanishing_intensity_pushes_arrivals_far_into_the_future() {
        // A tiny tail rate means later arrivals are effectively "never".
        let intensity = PiecewiseConstantIntensity::new(0.0, 10.0, vec![1.0, 1e-12]).unwrap();
        let mut rng = StdRng::seed_from_u64(6);
        let sampler = ArrivalSampler::new(&intensity, 0.0, 50, 50, &mut rng).unwrap();
        let far = sampler.mean_arrival(50).unwrap();
        assert!(far > 1e6);
    }

    #[test]
    fn extend_horizon_matches_a_fresh_full_horizon_sampler_exactly() {
        let intensity =
            PiecewiseConstantIntensity::new(0.0, 25.0, vec![0.4, 1.5, 0.0, 0.9]).unwrap();
        let mut rng_a = StdRng::seed_from_u64(7);
        let mut rng_b = StdRng::seed_from_u64(7);
        let mut grown = ArrivalSampler::new(&intensity, 5.0, 4, 300, &mut rng_a).unwrap();
        grown.extend_horizon(&intensity, 11);
        grown.extend_horizon(&intensity, 30);
        let fresh = ArrivalSampler::new(&intensity, 5.0, 30, 300, &mut rng_b).unwrap();
        assert_eq!(grown.horizon_arrivals(), 30);
        for i in 1..=30 {
            assert_eq!(
                grown.arrival_samples(i).unwrap(),
                fresh.arrival_samples(i).unwrap(),
                "arrival index {i}"
            );
        }
        // Both samplers drew exactly one u64 from their caller RNGs.
        assert_eq!(rng_a, rng_b);
    }

    #[test]
    fn extend_horizon_to_a_smaller_or_equal_horizon_is_a_no_op() {
        let intensity = constant_intensity(1.0);
        let mut rng = StdRng::seed_from_u64(8);
        let mut sampler = ArrivalSampler::new(&intensity, 0.0, 6, 40, &mut rng).unwrap();
        let before: Vec<f64> = sampler.arrival_samples(6).unwrap().to_vec();
        sampler.extend_horizon(&intensity, 6);
        sampler.extend_horizon(&intensity, 2);
        assert_eq!(sampler.horizon_arrivals(), 6);
        assert_eq!(sampler.arrival_samples(6).unwrap(), &before[..]);
    }

    #[test]
    fn sampling_is_independent_of_the_worker_count() {
        // Force both the inline path (tiny sampler) and the threaded path
        // (large sampler) and compare against per-path recomputation: the
        // matrix layout must hold exactly the per-path streams.
        let intensity =
            PiecewiseConstantIntensity::new(0.0, 40.0, vec![0.2, 2.0, 0.05, 1.0]).unwrap();
        let mut rng = StdRng::seed_from_u64(9);
        let base_seed: u64 = StdRng::seed_from_u64(9).gen();
        let sampler = ArrivalSampler::new(&intensity, 2.0, 8, 4_096, &mut rng).unwrap();
        for &r in &[0usize, 1, 17, 4_095] {
            let mut path_rng = StdRng::seed_from_u64(
                base_seed.wrapping_add((r as u64).wrapping_mul(SEED_STREAM_INCREMENT)),
            );
            let mut cumulative = 0.0;
            let mut previous = 2.0;
            for k in 1..=8 {
                let u: f64 = path_rng.gen();
                cumulative += -(1.0 - u).ln();
                let t = intensity.inverse_integrated(2.0, cumulative).max(previous);
                previous = t;
                assert_eq!(sampler.arrival_samples(k).unwrap()[r], t, "r={r} k={k}");
            }
        }
    }
}
