//! Monte Carlo sampling of the time of the i-th upcoming arrival.
//!
//! Under an NHPP with intensity `λ(t)` and current time `t₀`, the time
//! rescaling theorem gives `ξ_i = Λ⁻¹(t₀, γ_i)` where `γ_i ~ Gamma(i, 1)`.
//! The decision rules of paper eqs. (3), (5) and (7) only need Monte Carlo
//! samples of `ξ_i` (jointly across `i` for efficiency): sampling the whole
//! path of standard-exponential increments and transforming it through the
//! inverse integrated intensity yields exactly that.

use crate::error::ScalingError;
use rand::Rng;
use robustscaler_nhpp::Intensity;

/// Samples of upcoming arrival times relative to a fixed "now".
#[derive(Debug, Clone)]
pub struct ArrivalSampler {
    /// `samples[r][k]` is the r-th Monte Carlo sample of the (k+1)-th
    /// upcoming arrival time (absolute time).
    samples: Vec<Vec<f64>>,
    now: f64,
}

impl ArrivalSampler {
    /// Draw `replications` Monte Carlo paths of the next `horizon_arrivals`
    /// arrival times after `now` under the forecast `intensity`.
    pub fn new<I, R>(
        intensity: &I,
        now: f64,
        horizon_arrivals: usize,
        replications: usize,
        rng: &mut R,
    ) -> Result<Self, ScalingError>
    where
        I: Intensity,
        R: Rng + ?Sized,
    {
        if horizon_arrivals == 0 {
            return Err(ScalingError::InvalidParameter(
                "horizon_arrivals must be >= 1",
            ));
        }
        if replications == 0 {
            return Err(ScalingError::InvalidParameter("replications must be >= 1"));
        }
        let mut samples = Vec::with_capacity(replications);
        for _ in 0..replications {
            let mut path = Vec::with_capacity(horizon_arrivals);
            let mut cumulative = 0.0_f64;
            let mut previous = now;
            for _ in 0..horizon_arrivals {
                let u: f64 = rng.gen::<f64>();
                cumulative += -(1.0 - u).ln();
                // Λ⁻¹ is evaluated from `now` with the cumulative mass so the
                // per-step numerical error does not accumulate.
                let t = intensity.inverse_integrated(now, cumulative);
                let t = if t.is_finite() { t } else { f64::MAX / 4.0 };
                // Monotonicity guard against numerical jitter.
                let t = t.max(previous);
                path.push(t);
                previous = t;
            }
            samples.push(path);
        }
        Ok(Self { samples, now })
    }

    /// The planning time `t₀`.
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Number of Monte Carlo replications.
    pub fn replications(&self) -> usize {
        self.samples.len()
    }

    /// Number of upcoming arrivals covered per replication.
    pub fn horizon_arrivals(&self) -> usize {
        self.samples.first().map(|p| p.len()).unwrap_or(0)
    }

    /// The Monte Carlo samples of the `index`-th upcoming arrival
    /// (1-based, matching the paper's `ξ_i`).
    pub fn arrival_samples(&self, index: usize) -> Result<Vec<f64>, ScalingError> {
        if index == 0 || index > self.horizon_arrivals() {
            return Err(ScalingError::InvalidParameter(
                "arrival index outside the sampled horizon",
            ));
        }
        Ok(self.samples.iter().map(|path| path[index - 1]).collect())
    }

    /// Mean of the `index`-th upcoming arrival time.
    pub fn mean_arrival(&self, index: usize) -> Result<f64, ScalingError> {
        let samples = self.arrival_samples(index)?;
        Ok(samples.iter().sum::<f64>() / samples.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use robustscaler_nhpp::PiecewiseConstantIntensity;
    use robustscaler_stats::{ContinuousDistribution, Gamma};

    fn constant_intensity(rate: f64) -> PiecewiseConstantIntensity {
        PiecewiseConstantIntensity::new(0.0, 1_000_000.0, vec![rate]).unwrap()
    }

    #[test]
    fn rejects_degenerate_parameters() {
        let intensity = constant_intensity(1.0);
        let mut rng = StdRng::seed_from_u64(1);
        assert!(ArrivalSampler::new(&intensity, 0.0, 0, 10, &mut rng).is_err());
        assert!(ArrivalSampler::new(&intensity, 0.0, 10, 0, &mut rng).is_err());
    }

    #[test]
    fn constant_rate_arrivals_follow_gamma_distribution() {
        // Under rate λ, ξ_i − t₀ ~ Gamma(i, 1/λ).
        let rate = 0.5;
        let intensity = constant_intensity(rate);
        let mut rng = StdRng::seed_from_u64(2);
        let sampler = ArrivalSampler::new(&intensity, 100.0, 5, 40_000, &mut rng).unwrap();
        assert_eq!(sampler.replications(), 40_000);
        assert_eq!(sampler.horizon_arrivals(), 5);
        assert_eq!(sampler.now(), 100.0);
        for i in [1usize, 3, 5] {
            let gamma = Gamma::new(i as f64, 1.0 / rate).unwrap();
            let mean = sampler.mean_arrival(i).unwrap() - 100.0;
            assert!(
                (mean - gamma.mean()).abs() / gamma.mean() < 0.03,
                "i={i}: mean {mean} vs {}",
                gamma.mean()
            );
            // Check a couple of quantiles as well.
            let mut samples: Vec<f64> = sampler
                .arrival_samples(i)
                .unwrap()
                .iter()
                .map(|t| t - 100.0)
                .collect();
            samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
            for &p in &[0.1, 0.5, 0.9] {
                let empirical = samples[(p * samples.len() as f64) as usize];
                let theoretical = gamma.quantile(p);
                assert!(
                    (empirical - theoretical).abs() / theoretical < 0.05,
                    "i={i} p={p}: {empirical} vs {theoretical}"
                );
            }
        }
    }

    #[test]
    fn arrival_order_is_preserved_within_each_path() {
        let intensity =
            PiecewiseConstantIntensity::new(0.0, 50.0, vec![0.01, 2.0, 0.3, 1.0]).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let sampler = ArrivalSampler::new(&intensity, 10.0, 20, 200, &mut rng).unwrap();
        for r in 0..200 {
            let path: Vec<f64> = (1..=20)
                .map(|i| sampler.arrival_samples(i).unwrap()[r])
                .collect();
            for w in path.windows(2) {
                assert!(w[1] >= w[0]);
            }
            assert!(path[0] >= 10.0);
        }
    }

    #[test]
    fn later_indices_arrive_later_in_expectation() {
        let intensity = constant_intensity(2.0);
        let mut rng = StdRng::seed_from_u64(4);
        let sampler = ArrivalSampler::new(&intensity, 0.0, 10, 5_000, &mut rng).unwrap();
        let mut prev = 0.0;
        for i in 1..=10 {
            let mean = sampler.mean_arrival(i).unwrap();
            assert!(mean > prev);
            prev = mean;
        }
    }

    #[test]
    fn out_of_range_index_is_rejected() {
        let intensity = constant_intensity(1.0);
        let mut rng = StdRng::seed_from_u64(5);
        let sampler = ArrivalSampler::new(&intensity, 0.0, 3, 10, &mut rng).unwrap();
        assert!(sampler.arrival_samples(0).is_err());
        assert!(sampler.arrival_samples(4).is_err());
        assert!(sampler.arrival_samples(3).is_ok());
    }

    #[test]
    fn vanishing_intensity_pushes_arrivals_far_into_the_future() {
        // A tiny tail rate means later arrivals are effectively "never".
        let intensity = PiecewiseConstantIntensity::new(0.0, 10.0, vec![1.0, 1e-12]).unwrap();
        let mut rng = StdRng::seed_from_u64(6);
        let sampler = ArrivalSampler::new(&intensity, 0.0, 50, 50, &mut rng).unwrap();
        let far = sampler.mean_arrival(50).unwrap();
        assert!(far > 1e6);
    }
}
