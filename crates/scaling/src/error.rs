//! Error type for the scaling decision crate.

use robustscaler_nhpp::NhppError;
use robustscaler_stats::StatsError;
use std::fmt;

/// Errors produced by scaling decision computation.
#[derive(Debug, Clone, PartialEq)]
pub enum ScalingError {
    /// A parameter was invalid.
    InvalidParameter(&'static str),
    /// A constraint level makes the problem infeasible even with `x_i = 0`
    /// (e.g. a response-time target below the processing time).
    Infeasible(&'static str),
    /// The NHPP layer reported an error.
    Nhpp(NhppError),
    /// The statistics layer reported an error.
    Stats(StatsError),
}

impl fmt::Display for ScalingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScalingError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
            ScalingError::Infeasible(msg) => write!(f, "infeasible constraint: {msg}"),
            ScalingError::Nhpp(e) => write!(f, "NHPP error: {e}"),
            ScalingError::Stats(e) => write!(f, "statistics error: {e}"),
        }
    }
}

impl std::error::Error for ScalingError {}

impl From<NhppError> for ScalingError {
    fn from(e: NhppError) -> Self {
        ScalingError::Nhpp(e)
    }
}

impl From<StatsError> for ScalingError {
    fn from(e: StatsError) -> Self {
        ScalingError::Stats(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversions() {
        assert!(ScalingError::InvalidParameter("alpha")
            .to_string()
            .contains("alpha"));
        assert!(ScalingError::Infeasible("rt below processing time")
            .to_string()
            .contains("infeasible"));
        let e: ScalingError = NhppError::InvalidParameter("x").into();
        assert!(e.to_string().contains("NHPP"));
        let e: ScalingError = StatsError::EmptySample.into();
        assert!(e.to_string().contains("statistics"));
    }
}
