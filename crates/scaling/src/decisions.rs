//! The three stochastically constrained decision rules (paper §VI-B).
//!
//! All three rules reduce, per upcoming query `i`, to a one-dimensional
//! stochastic root-finding problem over Monte Carlo samples of
//! `(ξ_i, τ_i)`:
//!
//! * **HP-constrained** (eq. 3): `x_i* = α-quantile of (ξ_i − τ_i)` — the
//!   latest creation time whose hitting probability is still `1 − α`.
//! * **RT-constrained** (eq. 5): `x_i*` solves
//!   `E[(τ_i − (ξ_i − x)⁺)⁺] = d − µ_s` (Algorithm 3).
//! * **cost-constrained** (eq. 7): `x_i* = 0` when the budget is slack,
//!   otherwise `x_i*` solves `E[(ξ_i − τ_i − x)⁺] = B − µ_τ − µ_s`.

use crate::arrivals::ArrivalSampler;
use crate::error::ScalingError;
use crate::qos::PendingTimeModel;
use crate::sort_search::{solve_idle_cost_root_flat, solve_waiting_root_flat, PendingColumn};
use rand::Rng;
use robustscaler_stats::empirical_quantile_unstable;
use serde::{Deserialize, Serialize};

/// Which constrained formulation drives the decisions.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum DecisionRule {
    /// Hitting-probability constraint `P(ξ_i > x_i + τ_i) ≥ 1 − α`
    /// (RobustScaler-HP). `alpha` is the allowed miss probability.
    HittingProbability {
        /// Allowed miss probability α ∈ (0, 1).
        alpha: f64,
    },
    /// Expected response-time constraint `µ_s + E[waiting] ≤ d`
    /// (RobustScaler-RT). `target_waiting` is `d − µ_s` in seconds.
    ResponseTime {
        /// Waiting-time budget `d − µ_s` in seconds.
        target_waiting: f64,
    },
    /// Expected per-instance cost budget `E[idle] + µ_τ + µ_s ≤ B`
    /// (RobustScaler-cost). `target_idle` is `B − µ_τ − µ_s` in seconds.
    CostBudget {
        /// Idle-time budget `B − µ_τ − µ_s` in seconds.
        target_idle: f64,
    },
}

impl DecisionRule {
    /// Validate the rule's parameter.
    pub fn validate(&self) -> Result<(), ScalingError> {
        match self {
            DecisionRule::HittingProbability { alpha } => {
                if !(*alpha > 0.0 && *alpha < 1.0) {
                    return Err(ScalingError::InvalidParameter(
                        "alpha must lie strictly inside (0, 1)",
                    ));
                }
            }
            DecisionRule::ResponseTime { target_waiting } => {
                if !(*target_waiting >= 0.0) || !target_waiting.is_finite() {
                    return Err(ScalingError::InvalidParameter(
                        "waiting-time target must be finite and >= 0",
                    ));
                }
            }
            DecisionRule::CostBudget { target_idle } => {
                if !(*target_idle >= 0.0) || !target_idle.is_finite() {
                    return Err(ScalingError::InvalidParameter(
                        "idle-time budget must be finite and >= 0",
                    ));
                }
            }
        }
        Ok(())
    }
}

/// Configuration shared by all decision computations.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DecisionConfig {
    /// The constrained formulation in use.
    pub rule: DecisionRule,
    /// Pending (startup) time model of new instances.
    pub pending: PendingTimeModel,
    /// Number of Monte Carlo replications `R`.
    pub monte_carlo_samples: usize,
}

impl DecisionConfig {
    /// Validate the configuration.
    pub fn validate(&self) -> Result<(), ScalingError> {
        self.rule.validate()?;
        self.pending.validate()?;
        if self.monte_carlo_samples == 0 {
            return Err(ScalingError::InvalidParameter(
                "monte_carlo_samples must be >= 1",
            ));
        }
        Ok(())
    }
}

/// One computed scaling decision for a specific upcoming query.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScalingDecision {
    /// 1-based index of the upcoming query this instance will serve.
    pub arrival_index: usize,
    /// The optimal creation time before clamping (may lie in the past, which
    /// signals that the constraint is not attainable for this query).
    pub unconstrained_creation_time: f64,
    /// The creation time clamped to be no earlier than the planning time.
    pub creation_time: f64,
    /// Whether the raw solution had to be clamped (i.e. the desired QoS may
    /// be unattainable for this query — the infeasibility the paper discusses
    /// below eq. 3).
    pub clamped: bool,
}

/// Reusable buffers for the per-decision hot loop.
///
/// One decision needs R pending-time samples, an R-element working set for
/// the rule's statistic and (for the RT/cost rules) a breakpoint buffer of
/// up to 2R entries. Allocating those per decision dominates small-R
/// planning rounds, so the planner threads one `DecisionScratch` through
/// [`decide_with`] for the whole round; the buffers grow once and are then
/// reused allocation-free.
#[derive(Debug, Clone, Default)]
pub struct DecisionScratch {
    /// Pending-time samples `τ_r` (stochastic pending models only — the
    /// deterministic model is threaded through as a constant).
    pendings: Vec<f64>,
    /// HP rule: the differences `ξ_r − τ_r` (selected in place).
    diffs: Vec<f64>,
    /// RT rule: the 2R `(position, slope delta)` breakpoints.
    breakpoints: Vec<(f64, f64)>,
    /// Cost rule: the R breakpoint positions `ξ_r − τ_r`.
    points: Vec<f64>,
}

impl DecisionScratch {
    /// Fresh, empty scratch buffers (they grow on first use).
    pub fn new() -> Self {
        Self::default()
    }
}

/// Compute the creation time for the `arrival_index`-th upcoming query from
/// Monte Carlo samples of its arrival time.
///
/// `sampler` must have been built from the forecast intensity at the current
/// planning time; `rng` supplies the pending-time samples. Validates the
/// configuration on every call; batch callers should validate once and use
/// [`decide_with`].
pub fn decide<R: Rng + ?Sized>(
    sampler: &ArrivalSampler,
    arrival_index: usize,
    config: &DecisionConfig,
    rng: &mut R,
) -> Result<ScalingDecision, ScalingError> {
    config.validate()?;
    decide_with(
        sampler,
        arrival_index,
        config,
        rng,
        &mut DecisionScratch::new(),
    )
}

/// [`decide`] for pre-validated configurations, with caller-provided scratch
/// buffers — the allocation-free hot path the planner loops over.
///
/// `config` is trusted to have passed [`DecisionConfig::validate`]; an
/// invalid configuration still fails (the underlying quantile/root solvers
/// reject out-of-range parameters) but with a less specific error.
pub fn decide_with<R: Rng + ?Sized>(
    sampler: &ArrivalSampler,
    arrival_index: usize,
    config: &DecisionConfig,
    rng: &mut R,
    scratch: &mut DecisionScratch,
) -> Result<ScalingDecision, ScalingError> {
    let arrivals = sampler.arrival_samples(arrival_index)?;
    let now = sampler.now();
    // Deterministic pending times are threaded through as a constant: the
    // model draws nothing from the RNG and the solvers run the identical
    // arithmetic either way, so this is bit-identical to materializing the
    // τ buffer while keeping the inner loops over flat, vectorizable slices.
    let taus = match config.pending {
        PendingTimeModel::Deterministic(value) => PendingColumn::Constant(value),
        _ => {
            config
                .pending
                .sample_into(rng, arrivals.len(), &mut scratch.pendings);
            PendingColumn::PerReplication(&scratch.pendings)
        }
    };

    let raw = match config.rule {
        DecisionRule::HittingProbability { alpha } => {
            // x* = α-quantile of (ξ − τ), by in-place selection.
            scratch.diffs.clear();
            match taus {
                PendingColumn::Constant(tau) => {
                    scratch.diffs.extend(arrivals.iter().map(|xi| xi - tau));
                }
                PendingColumn::PerReplication(pendings) => {
                    scratch.diffs.extend(
                        arrivals
                            .iter()
                            .zip(pendings.iter())
                            .map(|(xi, tau)| xi - tau),
                    );
                }
            }
            empirical_quantile_unstable(&mut scratch.diffs, alpha)?
        }
        DecisionRule::ResponseTime { target_waiting } => {
            solve_waiting_root_flat(arrivals, taus, target_waiting, &mut scratch.breakpoints)?
        }
        DecisionRule::CostBudget { target_idle } => {
            solve_idle_cost_root_flat(arrivals, taus, target_idle, &mut scratch.points)?
        }
    };

    let clamped = raw < now;
    Ok(ScalingDecision {
        arrival_index,
        unconstrained_creation_time: raw,
        creation_time: raw.max(now),
        clamped,
    })
}

/// Compute decisions for a contiguous range of upcoming queries
/// (`first_index ..= last_index`, 1-based). The configuration is validated
/// once and the scratch buffers are shared across the whole batch.
pub fn decide_batch<R: Rng + ?Sized>(
    sampler: &ArrivalSampler,
    first_index: usize,
    last_index: usize,
    config: &DecisionConfig,
    rng: &mut R,
) -> Result<Vec<ScalingDecision>, ScalingError> {
    if first_index == 0 || last_index < first_index {
        return Err(ScalingError::InvalidParameter(
            "decision batch indices must satisfy 1 <= first <= last",
        ));
    }
    config.validate()?;
    let mut scratch = DecisionScratch::new();
    (first_index..=last_index)
        .map(|i| decide_with(sampler, i, config, rng, &mut scratch))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use robustscaler_nhpp::PiecewiseConstantIntensity;

    fn sampler(rate: f64, now: f64, horizon: usize, reps: usize, seed: u64) -> ArrivalSampler {
        let intensity = PiecewiseConstantIntensity::new(0.0, 1e7, vec![rate]).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        ArrivalSampler::new(&intensity, now, horizon, reps, &mut rng).unwrap()
    }

    fn config(rule: DecisionRule) -> DecisionConfig {
        DecisionConfig {
            rule,
            pending: PendingTimeModel::Deterministic(13.0),
            monte_carlo_samples: 1000,
        }
    }

    #[test]
    fn validation_rejects_bad_parameters() {
        assert!(DecisionRule::HittingProbability { alpha: 0.0 }
            .validate()
            .is_err());
        assert!(DecisionRule::HittingProbability { alpha: 1.0 }
            .validate()
            .is_err());
        assert!(DecisionRule::ResponseTime {
            target_waiting: -1.0
        }
        .validate()
        .is_err());
        assert!(DecisionRule::CostBudget { target_idle: -1.0 }
            .validate()
            .is_err());
        let mut c = config(DecisionRule::HittingProbability { alpha: 0.1 });
        c.monte_carlo_samples = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn hp_rule_attains_the_requested_hitting_probability() {
        // Constant rate 0.2 QPS, pending 13 s, first upcoming query.
        let s = sampler(0.2, 1000.0, 3, 20_000, 1);
        let alpha = 0.2;
        let mut rng = StdRng::seed_from_u64(2);
        let d = decide(
            &s,
            1,
            &config(DecisionRule::HittingProbability { alpha }),
            &mut rng,
        )
        .unwrap();
        // Check against the exact solution: ξ₁ − now ~ Exp(0.2); the
        // α-quantile of ξ₁ − τ is now + Q_exp(α) − 13.
        let exact = 1000.0 + -(1.0 - alpha).ln() / 0.2 - 13.0;
        assert!(
            (d.unconstrained_creation_time - exact).abs() < 1.0,
            "{} vs {exact}",
            d.unconstrained_creation_time
        );
        assert_eq!(d.arrival_index, 1);
        // Empirical hitting probability at the decision is ~1 − α.
        let arrivals = s.arrival_samples(1).unwrap();
        let hit_rate = arrivals
            .iter()
            .filter(|&&xi| xi > d.unconstrained_creation_time + 13.0)
            .count() as f64
            / arrivals.len() as f64;
        assert!(
            (hit_rate - (1.0 - alpha)).abs() < 0.02,
            "hit rate {hit_rate}"
        );
    }

    #[test]
    fn hp_rule_clamps_infeasible_decisions_to_now() {
        // Very high rate: the first arrival comes almost immediately, so a
        // 13-second head start is impossible.
        let s = sampler(50.0, 500.0, 2, 5_000, 3);
        let mut rng = StdRng::seed_from_u64(4);
        let d = decide(
            &s,
            1,
            &config(DecisionRule::HittingProbability { alpha: 0.05 }),
            &mut rng,
        )
        .unwrap();
        assert!(d.clamped);
        assert_eq!(d.creation_time, 500.0);
        assert!(d.unconstrained_creation_time < 500.0);
    }

    #[test]
    fn rt_rule_meets_the_waiting_budget_in_expectation() {
        let s = sampler(0.1, 0.0, 2, 20_000, 5);
        let target_waiting = 3.0;
        let mut rng = StdRng::seed_from_u64(6);
        let d = decide(
            &s,
            1,
            &config(DecisionRule::ResponseTime { target_waiting }),
            &mut rng,
        )
        .unwrap();
        // Recompute the empirical expected waiting at the decision point.
        let arrivals = s.arrival_samples(1).unwrap();
        let waiting: f64 = arrivals
            .iter()
            .map(|&xi| (13.0 - (xi - d.unconstrained_creation_time).max(0.0)).max(0.0))
            .sum::<f64>()
            / arrivals.len() as f64;
        assert!(
            (waiting - target_waiting).abs() < 0.15,
            "achieved waiting {waiting}"
        );
    }

    #[test]
    fn cost_rule_with_slack_budget_recommends_reactive_scaling() {
        // Low traffic and a huge idle budget: never create early.
        let s = sampler(0.01, 0.0, 2, 5_000, 7);
        let mut rng = StdRng::seed_from_u64(8);
        let d = decide(
            &s,
            1,
            &config(DecisionRule::CostBudget { target_idle: 1e9 }),
            &mut rng,
        )
        .unwrap();
        // The raw solution equals the earliest breakpoint; after clamping it
        // must not be earlier than "now".
        assert!(d.creation_time >= 0.0);
    }

    #[test]
    fn cost_rule_meets_the_idle_budget_in_expectation() {
        let s = sampler(0.05, 0.0, 2, 20_000, 9);
        let target_idle = 5.0;
        let mut rng = StdRng::seed_from_u64(10);
        let d = decide(
            &s,
            1,
            &config(DecisionRule::CostBudget { target_idle }),
            &mut rng,
        )
        .unwrap();
        let arrivals = s.arrival_samples(1).unwrap();
        let idle: f64 = arrivals
            .iter()
            .map(|&xi| (xi - 13.0 - d.unconstrained_creation_time).max(0.0))
            .sum::<f64>()
            / arrivals.len() as f64;
        assert!((idle - target_idle).abs() < 0.3, "achieved idle {idle}");
    }

    #[test]
    fn later_arrivals_get_later_creation_times() {
        let s = sampler(0.5, 0.0, 10, 5_000, 11);
        let mut rng = StdRng::seed_from_u64(12);
        let decisions = decide_batch(
            &s,
            1,
            10,
            &config(DecisionRule::HittingProbability { alpha: 0.1 }),
            &mut rng,
        )
        .unwrap();
        assert_eq!(decisions.len(), 10);
        for pair in decisions.windows(2) {
            assert!(pair[1].unconstrained_creation_time >= pair[0].unconstrained_creation_time);
        }
        assert!(decide_batch(
            &s,
            0,
            5,
            &config(DecisionRule::HittingProbability { alpha: 0.1 }),
            &mut rng
        )
        .is_err());
        assert!(decide_batch(
            &s,
            5,
            4,
            &config(DecisionRule::HittingProbability { alpha: 0.1 }),
            &mut rng
        )
        .is_err());
    }

    #[test]
    fn smaller_alpha_means_earlier_creation() {
        let s = sampler(0.2, 0.0, 2, 10_000, 13);
        let mut rng = StdRng::seed_from_u64(14);
        let strict = decide(
            &s,
            1,
            &config(DecisionRule::HittingProbability { alpha: 0.05 }),
            &mut rng,
        )
        .unwrap();
        let loose = decide(
            &s,
            1,
            &config(DecisionRule::HittingProbability { alpha: 0.5 }),
            &mut rng,
        )
        .unwrap();
        assert!(strict.unconstrained_creation_time < loose.unconstrained_creation_time);
    }
}
