//! Scaling decision optimization for RobustScaler (paper Section VI).
//!
//! Given the predicted arrival intensity, the paper derives per-query
//! instance creation times from stochastically constrained optimization:
//!
//! * the **HP-constrained** rule (eqs. 2–3): the α-quantile of `ξ_i − τ_i`,
//! * the **RT-constrained** rule (eqs. 4–5): the root of
//!   `E[(τ − (ξ − x)⁺)⁺] = d − µ_s`, solved by the sort-and-search
//!   Algorithm 3 in `O(R log R)`,
//! * the **cost-constrained** rule (eqs. 6–7): the root of
//!   `E[(ξ − τ − x)⁺] = B − µ_τ − µ_s`,
//!
//! plus the κ threshold (eq. 8) and the sequential planning scheme
//! (Algorithm 4) that carries the provable hitting-probability guarantees of
//! Propositions 1 and 2.
//!
//! The module layout mirrors that structure: [`qos`] defines the metrics,
//! [`arrivals`] samples the i-th upcoming arrival time from a forecast
//! intensity, [`decisions`] implements the three rules, [`sort_search`]
//! implements Algorithm 3, [`kappa`] the threshold, and [`planner`] the
//! sequential planning loop.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod arrivals;
pub mod decisions;
pub mod error;
pub mod kappa;
pub mod planner;
pub mod qos;
pub mod sort_search;

pub use arrivals::ArrivalSampler;
pub use decisions::{
    decide, decide_batch, decide_with, DecisionConfig, DecisionRule, DecisionScratch,
    ScalingDecision,
};
pub use error::ScalingError;
pub use kappa::{kappa_deterministic_pending, kappa_monte_carlo};
pub use planner::{PlannerConfig, PlannerScratch, PlannerState, PlanningRound, SequentialPlanner};
pub use qos::{cost, hit, response_time, PendingTimeModel, QosOutcome};
pub use sort_search::{
    solve_idle_cost_root, solve_idle_cost_root_flat, solve_idle_cost_root_with, solve_waiting_root,
    solve_waiting_root_flat, solve_waiting_root_with, PendingColumn,
};
