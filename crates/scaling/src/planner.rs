//! The sequential planning scheme (paper Algorithm 4, time-based variant).
//!
//! RobustScaler plans every `Δ` seconds. At each planning time `now` the
//! planner knows how many upcoming arrivals are already *covered* — instances
//! that are scheduled, pending, or idle-ready and will serve the next
//! arrivals — and computes creation times for the queries after those, but
//! only schedules the creations that must happen within the next planning
//! window `[now, now + Δ)`. Creations further in the future are left to later
//! rounds, which will know more about the traffic.
//!
//! The κ threshold (see [`crate::kappa`]) guarantees that planning at this
//! cadence always happens at least κ + 1 arrivals ahead, which is what the
//! hitting-probability guarantee of Proposition 1 needs.

use crate::arrivals::ArrivalSampler;
use crate::decisions::{decide_with, DecisionConfig, DecisionScratch, ScalingDecision};
use crate::error::ScalingError;
use rand::Rng;
use robustscaler_nhpp::Intensity;
use serde::{Deserialize, Serialize};

/// Configuration of the sequential planner.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PlannerConfig {
    /// The per-query decision configuration (rule, pending model, Monte Carlo
    /// sample count).
    pub decision: DecisionConfig,
    /// Planning interval `Δ` in seconds.
    pub planning_interval: f64,
    /// Hard cap on the number of creations scheduled in one round (a safety
    /// valve against forecast blow-ups).
    pub max_decisions_per_round: usize,
}

impl PlannerConfig {
    /// Validate the configuration.
    pub fn validate(&self) -> Result<(), ScalingError> {
        self.decision.validate()?;
        if !(self.planning_interval > 0.0) || !self.planning_interval.is_finite() {
            return Err(ScalingError::InvalidParameter(
                "planning interval must be finite and > 0",
            ));
        }
        if self.max_decisions_per_round == 0 {
            return Err(ScalingError::InvalidParameter(
                "max_decisions_per_round must be >= 1",
            ));
        }
        Ok(())
    }
}

/// The planner's view of the world at a planning instant.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PlannerState {
    /// Number of upcoming arrivals already covered by scheduled-but-not-yet
    /// -created instances plus pending/ready idle instances.
    pub covered: usize,
}

/// Reusable state threaded through consecutive planning rounds.
///
/// A serving process plans every Δ seconds for the lifetime of a tenant;
/// reallocating the per-decision Monte Carlo buffers each round would undo
/// the zero-copy work of the decision layer. One `PlannerScratch` per
/// tenant keeps the [`DecisionScratch`] buffers alive across rounds — they
/// grow once to the steady-state round size and are then reused
/// allocation-free.
#[derive(Debug, Clone, Default)]
pub struct PlannerScratch {
    decision: DecisionScratch,
}

impl PlannerScratch {
    /// Fresh, empty scratch (buffers grow on first use).
    pub fn new() -> Self {
        Self::default()
    }
}

/// One round's planning output.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlanningRound {
    /// Creations to schedule, ordered by arrival index.
    pub decisions: Vec<ScalingDecision>,
    /// Expected number of arrivals within the planning window under the
    /// forecast intensity.
    pub expected_arrivals_in_window: f64,
}

impl PlanningRound {
    /// Re-anchor this round at a planning time `dt` seconds later.
    ///
    /// Plan reuse (round-over-round memoization) applies this to a cached
    /// round whose *inputs* — forecast model, decision rule, pending model,
    /// covered count — are unchanged: under a time-invariant forecast
    /// segment the optimal creation times simply translate with the
    /// planning instant, so every decision's creation times shift by `dt`
    /// while arrival indices and clamping flags are preserved.
    /// `expected_arrivals_in_window` cannot be shifted (the window moved);
    /// the caller recomputes it against the forecast over the new window
    /// and passes it in.
    pub fn shifted_by(&self, dt: f64, expected_arrivals_in_window: f64) -> PlanningRound {
        PlanningRound {
            decisions: self
                .decisions
                .iter()
                .map(|d| ScalingDecision {
                    arrival_index: d.arrival_index,
                    unconstrained_creation_time: d.unconstrained_creation_time + dt,
                    creation_time: d.creation_time + dt,
                    clamped: d.clamped,
                })
                .collect(),
            expected_arrivals_in_window,
        }
    }

    /// Adopt another tenant's decision schedule verbatim (cluster decision
    /// dedup).
    ///
    /// When two tenants plan against the *same* shared arrival sampler with
    /// the same rule, pending model and covered count — and the pending
    /// model is deterministic, so [`decide_with`] consumes no caller RNG —
    /// their decision vectors are provably identical; only the
    /// expected-arrival count comes from each tenant's own forecast. The
    /// leader runs the loop once and followers adopt its decisions with
    /// their own `expected_arrivals_in_window`.
    pub fn adopted_with_expected(&self, expected_arrivals_in_window: f64) -> PlanningRound {
        PlanningRound {
            decisions: self.decisions.clone(),
            expected_arrivals_in_window,
        }
    }
}

/// The sequential planner.
#[derive(Debug, Clone)]
pub struct SequentialPlanner {
    config: PlannerConfig,
}

impl SequentialPlanner {
    /// Create a planner.
    pub fn new(config: PlannerConfig) -> Result<Self, ScalingError> {
        config.validate()?;
        Ok(Self { config })
    }

    /// The planner's configuration.
    pub fn config(&self) -> &PlannerConfig {
        &self.config
    }

    /// Plan the creations that must start within `[now, now + Δ)`.
    ///
    /// `intensity` is the forecast arrival intensity (absolute time);
    /// `state.covered` tells the planner how many upcoming arrivals already
    /// have an instance on the way.
    pub fn plan_window<I, R>(
        &self,
        intensity: &I,
        now: f64,
        state: PlannerState,
        rng: &mut R,
    ) -> Result<PlanningRound, ScalingError>
    where
        I: Intensity + Sync,
        R: Rng + ?Sized,
    {
        self.plan_window_with(intensity, now, state, rng, &mut PlannerScratch::new())
    }

    /// [`SequentialPlanner::plan_window`] with caller-provided scratch —
    /// the resumable entry point for serving loops that plan round after
    /// round and want the Monte Carlo buffers reused across rounds.
    pub fn plan_window_with<I, R>(
        &self,
        intensity: &I,
        now: f64,
        state: PlannerState,
        rng: &mut R,
        scratch: &mut PlannerScratch,
    ) -> Result<PlanningRound, ScalingError>
    where
        I: Intensity + Sync,
        R: Rng + ?Sized,
    {
        let window_end = now + self.config.planning_interval;
        let expected_in_window = intensity.integrated(now, window_end);
        let max_horizon = state.covered + self.config.max_decisions_per_round;

        // Initial guess of how many arrival indices we may need to look at:
        // a creation must land inside the window when its arrival comes
        // within roughly one pending lead past the window's end, so count
        // the forecast mass out to there plus a small constant. The guess is
        // deliberately tight — sampling is the round's dominant cost and
        // unconsumed arrival rows are pure waste, while undershooting only
        // costs an `extend_horizon` call that continues the per-path streams
        // (consumed samples are bit-identical for any guess/growth schedule).
        let lead = self.config.decision.pending.mean();
        let expected_to_lead = intensity.integrated(now, window_end + lead);
        let mut horizon = state.covered + (1.05 * expected_to_lead).ceil() as usize + 3;
        horizon = horizon.min(max_horizon);

        // One sampler serves the whole round: when the horizon guess turns
        // out too small, `extend_horizon` continues the already-sampled
        // exponential-increment paths instead of resampling from scratch, so
        // earlier decisions stay valid and are never recomputed. The
        // configuration was validated when the planner was built, so the
        // per-decision loop runs the validation-free scratch path.
        let mut sampler = ArrivalSampler::new(
            intensity,
            now,
            horizon,
            self.config.decision.monte_carlo_samples,
            rng,
        )?;
        let mut decisions: Vec<ScalingDecision> = Vec::new();
        let mut index = state.covered + 1;
        'grow: loop {
            while index <= horizon {
                let decision = decide_with(
                    &sampler,
                    index,
                    &self.config.decision,
                    rng,
                    &mut scratch.decision,
                )?;
                if decision.creation_time >= window_end {
                    // Later arrivals only need creations after this window;
                    // leave them to the next planning round.
                    break 'grow;
                }
                decisions.push(decision);
                if decisions.len() >= self.config.max_decisions_per_round {
                    break 'grow;
                }
                index += 1;
            }
            if horizon >= max_horizon {
                break;
            }
            // Every sampled index needed a creation inside the window — the
            // horizon was too small; enlarge and keep going. Growth is
            // geometric but gentle (+25%, at least 8 rows): the tight guess
            // above undershoots by at most the decision rule's quantile
            // margin, so doubling would overshoot far more than it saves.
            horizon = (horizon + (horizon / 4).max(8)).min(max_horizon);
            sampler.extend_horizon(intensity, horizon);
        }

        Ok(PlanningRound {
            decisions,
            expected_arrivals_in_window: expected_in_window,
        })
    }

    /// Plan one window against a *shared*, pre-built arrival-sample matrix.
    ///
    /// Fleets with many tenants whose forecasts quantize to the same cluster
    /// can sample one [`ArrivalSampler`] per cluster and have every member
    /// plan against it zero-copy, instead of each tenant paying the dominant
    /// Monte Carlo sampling cost itself. The tenant's *own* forecast
    /// `intensity` still provides `expected_arrivals_in_window`, and the
    /// tenant's own `rng` still drives any stochastic pending-time draws, so
    /// per-tenant decisions remain independent.
    ///
    /// Returns `Ok(None)` when the shared sampler cannot serve this tenant —
    /// its time origin or replication count differs, or its horizon runs out
    /// before the window is provably finished. Callers fall back to the
    /// private [`SequentialPlanner::plan_window_with`] path in that case; a
    /// `None` makes no decision and must have no side effects the fallback
    /// would duplicate (pending draws burned on a partial attempt are
    /// acceptable: shared planning is its own deterministic universe, not a
    /// bit-replay of the private path).
    pub fn plan_window_shared<I, R>(
        &self,
        intensity: &I,
        sampler: &ArrivalSampler,
        now: f64,
        state: PlannerState,
        rng: &mut R,
        scratch: &mut PlannerScratch,
    ) -> Result<Option<PlanningRound>, ScalingError>
    where
        I: Intensity + Sync,
        R: Rng + ?Sized,
    {
        if sampler.now() != now
            || sampler.replications() != self.config.decision.monte_carlo_samples
        {
            return Ok(None);
        }
        let window_end = now + self.config.planning_interval;
        let expected_in_window = intensity.integrated(now, window_end);
        let horizon = sampler
            .horizon_arrivals()
            .min(state.covered + self.config.max_decisions_per_round);

        let mut decisions: Vec<ScalingDecision> = Vec::new();
        let mut complete = false;
        for index in (state.covered + 1)..=horizon {
            let decision = decide_with(
                sampler,
                index,
                &self.config.decision,
                rng,
                &mut scratch.decision,
            )?;
            if decision.creation_time >= window_end {
                complete = true;
                break;
            }
            decisions.push(decision);
            if decisions.len() >= self.config.max_decisions_per_round {
                complete = true;
                break;
            }
        }
        if !complete {
            // The shared horizon was exhausted while creations still landed
            // inside the window — this tenant needs more arrivals than the
            // cluster matrix holds. Let the caller replan privately.
            return Ok(None);
        }
        Ok(Some(PlanningRound {
            decisions,
            expected_arrivals_in_window: expected_in_window,
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decisions::DecisionRule;
    use crate::qos::PendingTimeModel;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use robustscaler_nhpp::PiecewiseConstantIntensity;

    fn planner(rule: DecisionRule, interval: f64) -> SequentialPlanner {
        SequentialPlanner::new(PlannerConfig {
            decision: DecisionConfig {
                rule,
                pending: PendingTimeModel::Deterministic(13.0),
                monte_carlo_samples: 400,
            },
            planning_interval: interval,
            max_decisions_per_round: 500,
        })
        .unwrap()
    }

    fn flat_intensity(rate: f64) -> PiecewiseConstantIntensity {
        PiecewiseConstantIntensity::new(0.0, 1e7, vec![rate]).unwrap()
    }

    #[test]
    fn config_validation() {
        let mut config = PlannerConfig {
            decision: DecisionConfig {
                rule: DecisionRule::HittingProbability { alpha: 0.1 },
                pending: PendingTimeModel::Deterministic(13.0),
                monte_carlo_samples: 100,
            },
            planning_interval: 0.0,
            max_decisions_per_round: 100,
        };
        assert!(SequentialPlanner::new(config).is_err());
        config.planning_interval = 5.0;
        config.max_decisions_per_round = 0;
        assert!(SequentialPlanner::new(config).is_err());
        config.max_decisions_per_round = 10;
        assert!(SequentialPlanner::new(config).is_ok());
    }

    #[test]
    fn plans_roughly_the_expected_number_of_creations_per_window() {
        // 2 QPS and a 10-second window: about 20 arrivals; with a 13 s pending
        // time every one of them needs a creation scheduled within the window.
        let planner = planner(DecisionRule::HittingProbability { alpha: 0.1 }, 10.0);
        let intensity = flat_intensity(2.0);
        let mut rng = StdRng::seed_from_u64(1);
        let round = planner
            .plan_window(&intensity, 100.0, PlannerState { covered: 0 }, &mut rng)
            .unwrap();
        assert!((round.expected_arrivals_in_window - 20.0).abs() < 1e-9);
        // Every arrival expected within the window plus the 13 s startup lead
        // needs a creation scheduled now; with the α = 0.1 safety margin the
        // planner looks a little further ahead, so expect roughly 2·rate·(Δ +
        // τ) ≈ 46 with generous slack on both sides.
        assert!(
            round.decisions.len() >= 15 && round.decisions.len() <= 75,
            "scheduled {} creations",
            round.decisions.len()
        );
        // All creations lie within the window.
        for d in &round.decisions {
            assert!(d.creation_time >= 100.0);
            assert!(d.creation_time < 110.0);
        }
        // Arrival indices are consecutive starting right after the covered ones.
        for (offset, d) in round.decisions.iter().enumerate() {
            assert_eq!(d.arrival_index, offset + 1);
        }
    }

    #[test]
    fn covered_arrivals_shift_the_planned_indices() {
        let planner = planner(DecisionRule::HittingProbability { alpha: 0.1 }, 10.0);
        let intensity = flat_intensity(1.0);
        let mut rng = StdRng::seed_from_u64(2);
        let round = planner
            .plan_window(&intensity, 0.0, PlannerState { covered: 5 }, &mut rng)
            .unwrap();
        assert!(!round.decisions.is_empty());
        assert_eq!(round.decisions[0].arrival_index, 6);
    }

    #[test]
    fn quiet_traffic_schedules_nothing() {
        // 0.001 QPS and a 1-second window: the first uncovered arrival is far
        // in the future and its creation time falls outside the window.
        let planner = planner(DecisionRule::HittingProbability { alpha: 0.1 }, 1.0);
        let intensity = flat_intensity(0.001);
        let mut rng = StdRng::seed_from_u64(3);
        let round = planner
            .plan_window(&intensity, 0.0, PlannerState { covered: 2 }, &mut rng)
            .unwrap();
        assert!(round.decisions.is_empty(), "{:?}", round.decisions);
    }

    #[test]
    fn respects_the_per_round_cap() {
        let planner = SequentialPlanner::new(PlannerConfig {
            decision: DecisionConfig {
                rule: DecisionRule::HittingProbability { alpha: 0.1 },
                pending: PendingTimeModel::Deterministic(13.0),
                monte_carlo_samples: 200,
            },
            planning_interval: 100.0,
            max_decisions_per_round: 25,
        })
        .unwrap();
        let intensity = flat_intensity(10.0); // ~1000 arrivals per window
        let mut rng = StdRng::seed_from_u64(4);
        let round = planner
            .plan_window(&intensity, 0.0, PlannerState { covered: 0 }, &mut rng)
            .unwrap();
        assert_eq!(round.decisions.len(), 25);
    }

    #[test]
    fn scratch_reuse_across_rounds_is_bit_identical_to_fresh_scratch() {
        let planner = planner(DecisionRule::HittingProbability { alpha: 0.1 }, 10.0);
        let intensity = flat_intensity(1.5);
        // Fresh scratch every round vs one scratch threaded through all
        // rounds: same RNG stream, so the plans must match exactly.
        let mut fresh_rng = StdRng::seed_from_u64(11);
        let mut reused_rng = StdRng::seed_from_u64(11);
        let mut scratch = PlannerScratch::new();
        for round in 0..5 {
            let now = 50.0 + 10.0 * round as f64;
            let state = PlannerState { covered: round };
            let fresh = planner
                .plan_window(&intensity, now, state, &mut fresh_rng)
                .unwrap();
            let reused = planner
                .plan_window_with(&intensity, now, state, &mut reused_rng, &mut scratch)
                .unwrap();
            assert_eq!(fresh, reused, "round {round}");
        }
    }

    #[test]
    fn shifted_rounds_translate_creation_times_and_keep_indices() {
        let planner = planner(DecisionRule::HittingProbability { alpha: 0.1 }, 10.0);
        let intensity = flat_intensity(2.0);
        let mut rng = StdRng::seed_from_u64(9);
        let round = planner
            .plan_window(&intensity, 100.0, PlannerState { covered: 0 }, &mut rng)
            .unwrap();
        assert!(!round.decisions.is_empty());
        let shifted = round.shifted_by(10.0, 21.5);
        assert_eq!(shifted.decisions.len(), round.decisions.len());
        assert_eq!(shifted.expected_arrivals_in_window, 21.5);
        for (a, b) in round.decisions.iter().zip(&shifted.decisions) {
            assert_eq!(b.arrival_index, a.arrival_index);
            assert_eq!(b.clamped, a.clamped);
            assert_eq!(
                b.creation_time.to_bits(),
                (a.creation_time + 10.0).to_bits()
            );
            assert_eq!(
                b.unconstrained_creation_time.to_bits(),
                (a.unconstrained_creation_time + 10.0).to_bits()
            );
        }
        let adopted = round.adopted_with_expected(3.25);
        assert_eq!(adopted.decisions, round.decisions);
        assert_eq!(adopted.expected_arrivals_in_window, 3.25);
    }

    #[test]
    fn rt_rule_planner_produces_monotone_creation_times() {
        let planner = planner(
            DecisionRule::ResponseTime {
                target_waiting: 2.0,
            },
            20.0,
        );
        let intensity = flat_intensity(1.0);
        let mut rng = StdRng::seed_from_u64(5);
        let round = planner
            .plan_window(&intensity, 50.0, PlannerState { covered: 0 }, &mut rng)
            .unwrap();
        assert!(!round.decisions.is_empty());
        for pair in round.decisions.windows(2) {
            assert!(pair[1].creation_time >= pair[0].creation_time - 1e-9);
        }
    }
}
