//! The κ planning threshold of Algorithm 4 (paper eq. 8).
//!
//! `κ = max{ i ≥ 1 : α-quantile of (γ_i/λ̄ − τ_i) < 0 }` where
//! `γ_i ~ Gamma(i, 1)` and `λ̄` upper-bounds the arrival intensity. The
//! threshold is the number of upcoming queries whose desired creation time
//! would lie in the past even under the fastest plausible arrival stream —
//! these must always remain covered by already-scheduled instances, so
//! planning is triggered while κ instances are still outstanding.

use crate::error::ScalingError;
use crate::qos::PendingTimeModel;
use rand::Rng;
use robustscaler_stats::special::gamma_p_inverse;
use robustscaler_stats::{ContinuousDistribution, Gamma};

/// Largest index considered when searching for κ (a safety cap; traffic
/// would need to be extreme for κ to reach it).
const KAPPA_CAP: usize = 100_000;

/// Compute κ for a *deterministic* pending time `µ_τ` in closed form:
/// the α-quantile of `γ_i/λ̄ − µ_τ` is `F⁻¹_{Γ(i,1)}(α)/λ̄ − µ_τ`, so
/// `κ = max{ i : F⁻¹_{Γ(i,1)}(α) < λ̄·µ_τ }`.
pub fn kappa_deterministic_pending(
    rate_upper_bound: f64,
    pending_time: f64,
    alpha: f64,
) -> Result<usize, ScalingError> {
    if !(rate_upper_bound > 0.0) || !rate_upper_bound.is_finite() {
        return Err(ScalingError::InvalidParameter(
            "rate upper bound must be finite and > 0",
        ));
    }
    if !(pending_time >= 0.0) || !pending_time.is_finite() {
        return Err(ScalingError::InvalidParameter(
            "pending time must be finite and >= 0",
        ));
    }
    if !(alpha > 0.0 && alpha < 1.0) {
        return Err(ScalingError::InvalidParameter("alpha must be in (0, 1)"));
    }
    let budget = rate_upper_bound * pending_time;
    let mut kappa = 0usize;
    for i in 1..=KAPPA_CAP {
        if gamma_p_inverse(i as f64, alpha) < budget {
            kappa = i;
        } else {
            break;
        }
    }
    Ok(kappa)
}

/// Compute κ by Monte Carlo for a general pending-time model.
///
/// For each candidate `i`, `replications` samples of `γ_i/λ̄ − τ` are drawn
/// and the empirical α-quantile is checked against zero.
pub fn kappa_monte_carlo<R: Rng + ?Sized>(
    rate_upper_bound: f64,
    pending: &PendingTimeModel,
    alpha: f64,
    replications: usize,
    rng: &mut R,
) -> Result<usize, ScalingError> {
    if !(rate_upper_bound > 0.0) || !rate_upper_bound.is_finite() {
        return Err(ScalingError::InvalidParameter(
            "rate upper bound must be finite and > 0",
        ));
    }
    if !(alpha > 0.0 && alpha < 1.0) {
        return Err(ScalingError::InvalidParameter("alpha must be in (0, 1)"));
    }
    if replications == 0 {
        return Err(ScalingError::InvalidParameter("replications must be >= 1"));
    }
    pending.validate()?;

    let mut kappa = 0usize;
    for i in 1..=KAPPA_CAP {
        let gamma = Gamma::with_unit_scale(i as f64).expect("positive shape");
        let mut diffs: Vec<f64> = (0..replications)
            .map(|_| gamma.sample(rng) / rate_upper_bound - pending.sample(rng))
            .collect();
        let quantile = robustscaler_stats::empirical_quantile_unstable(&mut diffs, alpha)?;
        if quantile < 0.0 {
            kappa = i;
        } else {
            break;
        }
    }
    Ok(kappa)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rejects_invalid_parameters() {
        assert!(kappa_deterministic_pending(0.0, 13.0, 0.1).is_err());
        assert!(kappa_deterministic_pending(1.0, -1.0, 0.1).is_err());
        assert!(kappa_deterministic_pending(1.0, 13.0, 0.0).is_err());
        assert!(kappa_deterministic_pending(1.0, 13.0, 1.0).is_err());
        let mut rng = StdRng::seed_from_u64(1);
        assert!(kappa_monte_carlo(
            1.0,
            &PendingTimeModel::Deterministic(13.0),
            0.1,
            0,
            &mut rng
        )
        .is_err());
        assert!(kappa_monte_carlo(
            -1.0,
            &PendingTimeModel::Deterministic(13.0),
            0.1,
            100,
            &mut rng
        )
        .is_err());
    }

    #[test]
    fn zero_pending_time_means_no_lookahead_needed() {
        // With τ = 0 every query can be served reactively, so κ = 0.
        assert_eq!(kappa_deterministic_pending(10.0, 0.0, 0.1).unwrap(), 0);
    }

    #[test]
    fn kappa_grows_with_traffic_and_pending_time() {
        let base = kappa_deterministic_pending(0.5, 13.0, 0.1).unwrap();
        let more_traffic = kappa_deterministic_pending(5.0, 13.0, 0.1).unwrap();
        let longer_pending = kappa_deterministic_pending(0.5, 130.0, 0.1).unwrap();
        assert!(more_traffic > base);
        assert!(longer_pending > base);
    }

    #[test]
    fn kappa_shrinks_with_stricter_alpha() {
        // A smaller α (stricter QoS) means the quantile is smaller, so fewer
        // indices satisfy the condition... note the quantile grows with i, so
        // smaller α admits *more* indices. Verify the actual monotonicity:
        let strict = kappa_deterministic_pending(1.0, 13.0, 0.01).unwrap();
        let loose = kappa_deterministic_pending(1.0, 13.0, 0.5).unwrap();
        assert!(
            strict >= loose,
            "alpha=0.01 gives {strict}, alpha=0.5 gives {loose}"
        );
    }

    #[test]
    fn closed_form_matches_definition_for_small_cases() {
        // λ̄ = 1, τ = 2, α = 0.5: the median of Gamma(i,1) is < 2 for i = 1, 2
        // (medians ≈ 0.693, 1.678) and > 2 for i = 3 (≈ 2.674), so κ = 2.
        assert_eq!(kappa_deterministic_pending(1.0, 2.0, 0.5).unwrap(), 2);
        // λ̄·τ = 0.1: even the first arrival's α-quantile exceeds it for
        // α = 0.5 (median 0.693), so κ = 0.
        assert_eq!(kappa_deterministic_pending(0.05, 2.0, 0.5).unwrap(), 0);
    }

    #[test]
    fn monte_carlo_agrees_with_closed_form_for_deterministic_pending() {
        let mut rng = StdRng::seed_from_u64(7);
        for &(rate, tau, alpha) in &[
            (0.5_f64, 13.0_f64, 0.1_f64),
            (2.0, 13.0, 0.05),
            (1.0, 2.0, 0.5),
        ] {
            let exact = kappa_deterministic_pending(rate, tau, alpha).unwrap();
            let mc = kappa_monte_carlo(
                rate,
                &PendingTimeModel::Deterministic(tau),
                alpha,
                20_000,
                &mut rng,
            )
            .unwrap();
            assert!(
                (exact as i64 - mc as i64).abs() <= 1,
                "rate {rate} tau {tau} alpha {alpha}: exact {exact} vs mc {mc}"
            );
        }
    }

    #[test]
    fn random_pending_time_changes_kappa_smoothly() {
        let mut rng = StdRng::seed_from_u64(9);
        let deterministic = kappa_monte_carlo(
            1.0,
            &PendingTimeModel::Deterministic(13.0),
            0.1,
            10_000,
            &mut rng,
        )
        .unwrap();
        let random = kappa_monte_carlo(
            1.0,
            &PendingTimeModel::LogNormal {
                mean: 13.0,
                std_dev: 3.0,
            },
            0.1,
            10_000,
            &mut rng,
        )
        .unwrap();
        // Randomness in τ shifts κ a little but not wildly.
        assert!((deterministic as i64 - random as i64).abs() <= 4);
    }
}
