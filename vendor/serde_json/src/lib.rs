//! Minimal, dependency-free stand-in for `serde_json`.
//!
//! Provides [`to_string`] and [`from_str`] over the vendored `serde`
//! [`Value`] tree. The emitted JSON is compact, UTF-8, and uses Rust's
//! shortest-round-trip float formatting, so `f64` values survive a
//! serialize → parse cycle bit-exactly (NaN and infinities serialize as
//! `null`, matching real serde_json).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use serde::{Deserialize, Serialize, Serializer, Value};

pub use serde::Error;

/// Serialize `value` to a compact JSON string.
///
/// Streams directly into the output buffer via [`serde::Serializer`] —
/// no intermediate [`Value`] tree is built. Output is byte-identical to
/// [`value_to_string`] over `value.to_value()` (pinned by proptest).
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut s = JsonSerializer::new();
    value.serialize(&mut s);
    Ok(s.finish())
}

/// Serialize a [`Value`] tree to a compact JSON string.
///
/// This is the original tree-walking writer, kept public as the reference
/// implementation that the streaming [`to_string`] path is checked against.
pub fn value_to_string(value: &Value) -> String {
    let mut out = String::new();
    write_value(value, &mut out);
    out
}

/// A [`serde::Serializer`] that writes compact JSON into a `String`.
///
/// Number and string formatting are shared with the tree writer
/// (`write_value`/`write_string`) so both paths produce identical
/// bytes: shortest-round-trip floats, exact u64/i64, `null` for
/// non-finite floats.
pub struct JsonSerializer {
    out: String,
    // One entry per open array/object: `true` until the first element/key
    // is written, so commas go before every subsequent one.
    first: Vec<bool>,
}

impl JsonSerializer {
    /// Create a serializer with an empty output buffer.
    pub fn new() -> Self {
        JsonSerializer {
            out: String::new(),
            first: Vec::new(),
        }
    }

    /// Consume the serializer, returning the JSON written so far.
    pub fn finish(self) -> String {
        self.out
    }

    fn comma(&mut self) {
        if let Some(first) = self.first.last_mut() {
            if *first {
                *first = false;
            } else {
                self.out.push(',');
            }
        }
    }
}

impl Default for JsonSerializer {
    fn default() -> Self {
        Self::new()
    }
}

impl Serializer for JsonSerializer {
    fn null(&mut self) {
        self.out.push_str("null");
    }

    fn boolean(&mut self, b: bool) {
        self.out.push_str(if b { "true" } else { "false" });
    }

    fn num(&mut self, x: f64) {
        if x.is_finite() {
            write_f64(x, &mut self.out);
        } else {
            self.out.push_str("null");
        }
    }

    fn int(&mut self, i: i64) {
        self.out.push_str(&i.to_string());
    }

    fn uint(&mut self, u: u64) {
        self.out.push_str(&u.to_string());
    }

    fn str(&mut self, s: &str) {
        write_string(s, &mut self.out);
    }

    fn begin_arr(&mut self) {
        self.out.push('[');
        self.first.push(true);
    }

    fn elem(&mut self) {
        self.comma();
    }

    fn end_arr(&mut self) {
        self.first.pop();
        self.out.push(']');
    }

    fn begin_obj(&mut self) {
        self.out.push('{');
        self.first.push(true);
    }

    fn key(&mut self, k: &str) {
        self.comma();
        write_string(k, &mut self.out);
        self.out.push(':');
    }

    fn end_obj(&mut self) {
        self.first.pop();
        self.out.push('}');
    }
}

/// Shared float formatting for both writer paths: Rust's Display for f64
/// is the shortest string that parses back to the same bits, so
/// round-trips are exact.
fn write_f64(x: f64, out: &mut String) {
    out.push_str(&x.to_string());
}

/// Deserialize a `T` from a JSON string.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::msg(format!(
            "trailing characters at byte {}",
            parser.pos
        )));
    }
    T::from_value(&value)
}

fn write_value(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Num(x) => {
            if x.is_finite() {
                write_f64(*x, out);
            } else {
                out.push_str("null");
            }
        }
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Str(s) => write_string(s, out),
        Value::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        Value::Obj(pairs) => {
            out.push('{');
            for (i, (k, item)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(k, out);
                out.push(':');
                write_value(item, out);
            }
            out.push('}');
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::msg(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            None => Err(Error::msg("unexpected end of input")),
            Some(b'n') => {
                if self.eat_keyword("null") {
                    Ok(Value::Null)
                } else {
                    Err(Error::msg(format!("invalid token at byte {}", self.pos)))
                }
            }
            Some(b't') => {
                if self.eat_keyword("true") {
                    Ok(Value::Bool(true))
                } else {
                    Err(Error::msg(format!("invalid token at byte {}", self.pos)))
                }
            }
            Some(b'f') => {
                if self.eat_keyword("false") {
                    Ok(Value::Bool(false))
                } else {
                    Err(Error::msg(format!("invalid token at byte {}", self.pos)))
                }
            }
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => {
                            self.pos += 1;
                        }
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Arr(items));
                        }
                        _ => {
                            return Err(Error::msg(format!(
                                "expected `,` or `]` at byte {}",
                                self.pos
                            )))
                        }
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut pairs = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Obj(pairs));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let value = self.parse_value()?;
                    pairs.push((key, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => {
                            self.pos += 1;
                        }
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Obj(pairs));
                        }
                        _ => {
                            return Err(Error::msg(format!(
                                "expected `,` or `}}` at byte {}",
                                self.pos
                            )))
                        }
                    }
                }
            }
            Some(_) => self.parse_number(),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            // Fast-forward over plain UTF-8 until a quote or escape.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::msg("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'b') => s.push('\u{0008}'),
                        Some(b'f') => s.push('\u{000C}'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.parse_hex4()?;
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                // High surrogate: expect a \uXXXX low surrogate.
                                if !(self.eat_keyword("\\u")) {
                                    return Err(Error::msg("unpaired surrogate"));
                                }
                                let lo = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(Error::msg("invalid low surrogate"));
                                }
                                let combined = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(combined)
                                    .ok_or_else(|| Error::msg("invalid surrogate pair"))?
                            } else {
                                char::from_u32(cp)
                                    .ok_or_else(|| Error::msg("invalid unicode escape"))?
                            };
                            s.push(c);
                            continue;
                        }
                        _ => return Err(Error::msg("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                _ => return Err(Error::msg("unterminated string")),
            }
        }
    }

    /// Parse exactly four hex digits (the `XXXX` of `\uXXXX`); leaves `pos`
    /// after them.
    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(Error::msg("truncated unicode escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| Error::msg("invalid unicode escape"))?;
        let cp = u32::from_str_radix(hex, 16).map_err(|_| Error::msg("invalid unicode escape"))?;
        self.pos = end;
        Ok(cp)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || b == b'.' || b == b'e' || b == b'E' || b == b'+' || b == b'-' {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::msg("invalid number"))?;
        // Integer-looking tokens (no fraction, no exponent) are parsed
        // losslessly: `u64`/`i64` hold values a round-trip through `f64`
        // would corrupt above 2^53 (checkpointed RNG states and seeds are
        // full-range). `-0` stays a float so `-0.0_f64` keeps its sign bit,
        // and integers too large for 64 bits fall back to the float path.
        if !text.bytes().any(|b| b == b'.' || b == b'e' || b == b'E') {
            if let Some(digits) = text.strip_prefix('-') {
                if digits.bytes().any(|b| b != b'0') {
                    if let Ok(i) = text.parse::<i64>() {
                        return Ok(Value::Int(i));
                    }
                }
            } else if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
        }
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| Error::msg(format!("invalid number `{text}` at byte {start}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars_and_collections() {
        let v: Vec<Option<f64>> = vec![Some(1.5), None, Some(-0.25)];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[1.5,null,-0.25]");
        let back: Vec<Option<f64>> = from_str(&json).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn floats_round_trip_bit_exactly() {
        let xs = vec![
            std::f64::consts::PI,
            1.0 / 3.0,
            f64::MIN_POSITIVE,
            1e300,
            -2.2250738585072014e-308,
        ];
        let back: Vec<f64> = from_str(&to_string(&xs).unwrap()).unwrap();
        for (a, b) in xs.iter().zip(&back) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn large_integers_round_trip_losslessly() {
        // Above 2^53 an f64 detour would corrupt these (RNG states and
        // tenant seeds in checkpoints are full-range u64).
        let xs = vec![u64::MAX, u64::MAX - 1, (1u64 << 53) + 1, 0];
        let json = to_string(&xs).unwrap();
        assert_eq!(
            json,
            "[18446744073709551615,18446744073709551614,9007199254740993,0]"
        );
        let back: Vec<u64> = from_str(&json).unwrap();
        assert_eq!(xs, back);
        let ys = vec![i64::MIN, i64::MAX, -((1i64 << 53) + 1)];
        let back: Vec<i64> = from_str(&to_string(&ys).unwrap()).unwrap();
        assert_eq!(ys, back);
        // Integer tokens still deserialize into float targets...
        let f: f64 = from_str("3").unwrap();
        assert_eq!(f, 3.0);
        // ...and negative zero keeps its sign bit through the round trip.
        let z: f64 = from_str(&to_string(&-0.0_f64).unwrap()).unwrap();
        assert_eq!(z.to_bits(), (-0.0_f64).to_bits());
        // Fixed-size arrays (RNG state shape) round-trip too.
        let state: [u64; 4] = [u64::MAX, 1 << 63, 12345, 0];
        let back: [u64; 4] = from_str(&to_string(&state).unwrap()).unwrap();
        assert_eq!(state, back);
    }

    #[test]
    fn strings_escape_and_unescape() {
        let s = "line1\nline2\t\"quoted\" \\ back — unicode ✓".to_string();
        let back: String = from_str(&to_string(&s).unwrap()).unwrap();
        assert_eq!(s, back);
        let surrogate: String = from_str(r#""😀""#).unwrap();
        assert_eq!(surrogate, "😀");
    }

    #[test]
    fn streaming_matches_tree_writer() {
        // The streaming path (Serialize::serialize → JsonSerializer) must be
        // byte-identical to the tree path (to_value → value_to_string) for
        // every shape the workspace serializes.
        fn check<T: Serialize + ?Sized>(x: &T) {
            assert_eq!(to_string(x).unwrap(), value_to_string(&x.to_value()));
        }
        check(&true);
        check(&u64::MAX);
        check(&i64::MIN);
        check(&-0.0_f64);
        check(&f64::NAN);
        check(&f64::INFINITY);
        check(&std::f64::consts::PI);
        check("escape\nme \"now\" \\ \u{1} — ✓");
        check(&Option::<f64>::None);
        check(&Some(vec![1u64, 2, 3]));
        check(&vec![Some(-0.0_f64), None, Some(f64::NEG_INFINITY)]);
        check(&[u64::MAX, 1 << 63, 12345, 0]);
        check(&(1u8, "two".to_string()));
        check(&(1u8, "two".to_string(), vec![3.0_f64]));
        check(&Vec::<bool>::new());
        let nested = Value::Obj(vec![
            ("empty_obj".into(), Value::Obj(vec![])),
            ("empty_arr".into(), Value::Arr(vec![])),
            (
                "mixed".into(),
                Value::Arr(vec![
                    Value::Null,
                    Value::UInt(u64::MAX),
                    Value::Num(-0.0),
                    Value::Str("k\"ey".into()),
                ]),
            ),
        ]);
        check(&nested);
    }

    #[test]
    fn non_finite_floats_stream_as_null() {
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
        assert_eq!(to_string(&f64::INFINITY).unwrap(), "null");
        assert_eq!(to_string(&-0.0_f64).unwrap(), "-0");
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(from_str::<f64>("1.5 garbage").is_err());
        assert!(from_str::<Vec<f64>>("[1,").is_err());
        assert!(from_str::<String>("\"unterminated").is_err());
        assert!(from_str::<bool>("maybe").is_err());
    }
}
