//! `#[derive(Serialize, Deserialize)]` for the vendored `serde` stand-in.
//!
//! The build environment has no crates.io access, so this proc macro is
//! written against `proc_macro` alone — no `syn`, no `quote`. It parses just
//! enough of the item grammar to cover what this workspace derives:
//!
//! - structs with named fields, tuple structs, unit structs,
//! - enums whose variants are unit, tuple (`V(T, ...)`), or struct
//!   (`V { f: T, ... }`) shaped.
//!
//! Generic types and `#[serde(...)]` attributes are intentionally
//! unsupported and fail with a compile-time panic rather than silently
//! mis-serializing. Enums use serde's externally-tagged representation
//! (`"Variant"`, `{"Variant": value}`, `{"Variant": [..]}`,
//! `{"Variant": {..}}`), so JSON produced by the real serde for these shapes
//! is accepted and vice versa.

#![warn(rust_2018_idioms)]

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::iter::Peekable;

/// Shape of the item a derive was applied to.
enum Shape {
    NamedStruct {
        name: String,
        fields: Vec<String>,
    },
    TupleStruct {
        name: String,
        arity: usize,
    },
    UnitStruct {
        name: String,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

struct Variant {
    name: String,
    shape: VariantShape,
}

enum VariantShape {
    Unit,
    Tuple(usize),
    Struct(Vec<String>),
}

/// Skip a `#[...]` attribute; the leading `#` has already been consumed.
fn skip_attr_body(it: &mut Peekable<impl Iterator<Item = TokenTree>>) {
    match it.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {}
        other => panic!("serde_derive: malformed attribute, found {other:?}"),
    }
}

/// Consume leading attributes (`#[...]`, including doc comments) and
/// visibility (`pub`, `pub(crate)`, ...), leaving the iterator at the next
/// significant token.
fn skip_attrs_and_vis(it: &mut Peekable<impl Iterator<Item = TokenTree>>) {
    loop {
        match it.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                it.next();
                skip_attr_body(it);
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                it.next();
                if let Some(TokenTree::Group(g)) = it.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        it.next();
                    }
                }
            }
            _ => return,
        }
    }
}

/// Consume tokens of a type, stopping (without consuming) at a `,` that sits
/// at angle-bracket depth zero, or at the end of the stream.
fn skip_type(it: &mut Peekable<impl Iterator<Item = TokenTree>>) {
    let mut depth: i64 = 0;
    while let Some(tok) = it.peek() {
        match tok {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => return,
            _ => {}
        }
        it.next();
    }
}

/// Parse `name: Type, ...` named-field lists (struct bodies and struct
/// variant bodies).
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let mut it = stream.into_iter().peekable();
    let mut fields = Vec::new();
    loop {
        skip_attrs_and_vis(&mut it);
        let name = match it.next() {
            None => break,
            Some(TokenTree::Ident(id)) => id.to_string(),
            Some(other) => panic!("serde_derive: expected field name, found {other}"),
        };
        match it.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde_derive: expected `:` after field `{name}`, found {other:?}"),
        }
        skip_type(&mut it);
        if let Some(TokenTree::Punct(p)) = it.peek() {
            if p.as_char() == ',' {
                it.next();
            }
        }
        fields.push(name);
    }
    fields
}

/// Count the fields of a tuple struct / tuple variant body.
fn tuple_arity(stream: TokenStream) -> usize {
    let mut depth: i64 = 0;
    let mut arity = 0;
    let mut segment_has_tokens = false;
    for tok in stream {
        match &tok {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                if segment_has_tokens {
                    arity += 1;
                }
                segment_has_tokens = false;
                continue;
            }
            _ => {}
        }
        segment_has_tokens = true;
    }
    if segment_has_tokens {
        arity += 1;
    }
    arity
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut it = stream.into_iter().peekable();
    let mut variants = Vec::new();
    loop {
        skip_attrs_and_vis(&mut it);
        let name = match it.next() {
            None => break,
            Some(TokenTree::Ident(id)) => id.to_string(),
            Some(other) => panic!("serde_derive: expected variant name, found {other}"),
        };
        let shape = match it.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = tuple_arity(g.stream());
                it.next();
                VariantShape::Tuple(arity)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                it.next();
                VariantShape::Struct(fields)
            }
            _ => VariantShape::Unit,
        };
        match it.next() {
            None => {
                variants.push(Variant { name, shape });
                break;
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => {
                variants.push(Variant { name, shape });
            }
            Some(other) => panic!("serde_derive: expected `,` after variant, found {other}"),
        }
    }
    variants
}

fn parse_item(input: TokenStream) -> Shape {
    let mut it = input.into_iter().peekable();
    skip_attrs_and_vis(&mut it);
    let kind = match it.next() {
        Some(TokenTree::Ident(id)) => {
            let s = id.to_string();
            if s != "struct" && s != "enum" {
                panic!("serde_derive: expected `struct` or `enum`, found `{s}`");
            }
            s
        }
        other => panic!("serde_derive: expected `struct` or `enum`, found {other:?}"),
    };
    let name = match it.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected item name, found {other:?}"),
    };
    if let Some(TokenTree::Punct(p)) = it.peek() {
        if p.as_char() == '<' {
            panic!("serde_derive: generic type `{name}` is not supported by the vendored shim");
        }
    }
    if kind == "enum" {
        match it.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Shape::Enum {
                name,
                variants: parse_variants(g.stream()),
            },
            other => panic!("serde_derive: expected enum body, found {other:?}"),
        }
    } else {
        match it.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Shape::NamedStruct {
                name,
                fields: parse_named_fields(g.stream()),
            },
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::TupleStruct {
                    name,
                    arity: tuple_arity(g.stream()),
                }
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::UnitStruct { name },
            other => panic!("serde_derive: expected struct body, found {other:?}"),
        }
    }
}

/// Derive `serde::Serialize` (vendored value-tree flavour, plus the
/// streaming `serialize` override so derived types skip the `Value` tree
/// when writing JSON).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let shape = parse_item(input);
    let code = match shape {
        Shape::NamedStruct { name, fields } => {
            let pushes: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "fields.push((String::from(\"{f}\"), \
                         ::serde::Serialize::to_value(&self.{f})));\n"
                    )
                })
                .collect();
            let streams: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "s.key(\"{f}\");\n\
                         ::serde::Serialize::serialize(&self.{f}, s);\n"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         let mut fields: Vec<(String, ::serde::Value)> = Vec::new();\n\
                         {pushes}\
                         ::serde::Value::Obj(fields)\n\
                     }}\n\
                     fn serialize(&self, s: &mut dyn ::serde::Serializer) {{\n\
                         s.begin_obj();\n\
                         {streams}\
                         s.end_obj();\n\
                     }}\n\
                 }}"
            )
        }
        Shape::TupleStruct { name, arity } => {
            let (body, stream_body) = if arity == 1 {
                // Newtype structs are transparent, like real serde.
                (
                    "::serde::Serialize::to_value(&self.0)".to_string(),
                    "::serde::Serialize::serialize(&self.0, s);".to_string(),
                )
            } else {
                let items: Vec<String> = (0..arity)
                    .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                    .collect();
                let streams: String = (0..arity)
                    .map(|i| format!("s.elem();\n::serde::Serialize::serialize(&self.{i}, s);\n"))
                    .collect();
                (
                    format!("::serde::Value::Arr(vec![{}])", items.join(", ")),
                    format!("s.begin_arr();\n{streams}s.end_arr();"),
                )
            };
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
                     fn serialize(&self, s: &mut dyn ::serde::Serializer) {{\n\
                         {stream_body}\n\
                     }}\n\
                 }}"
            )
        }
        Shape::UnitStruct { name } => format!(
            "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{ ::serde::Value::Null }}\n\
                 fn serialize(&self, s: &mut dyn ::serde::Serializer) {{ s.null(); }}\n\
             }}"
        ),
        Shape::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.shape {
                        VariantShape::Unit => format!(
                            "{name}::{vname} => \
                             ::serde::Value::Str(String::from(\"{vname}\")),\n"
                        ),
                        VariantShape::Tuple(arity) => {
                            let binds: Vec<String> = (0..*arity).map(|i| format!("f{i}")).collect();
                            let inner = if *arity == 1 {
                                "::serde::Serialize::to_value(f0)".to_string()
                            } else {
                                let items: Vec<String> = binds
                                    .iter()
                                    .map(|b| format!("::serde::Serialize::to_value({b})"))
                                    .collect();
                                format!("::serde::Value::Arr(vec![{}])", items.join(", "))
                            };
                            format!(
                                "{name}::{vname}({binds}) => ::serde::Value::Obj(vec![\
                                 (String::from(\"{vname}\"), {inner})]),\n",
                                binds = binds.join(", ")
                            )
                        }
                        VariantShape::Struct(fields) => {
                            let binds = fields.join(", ");
                            let pushes: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(String::from(\"{f}\"), \
                                         ::serde::Serialize::to_value({f}))"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vname} {{ {binds} }} => ::serde::Value::Obj(vec![\
                                 (String::from(\"{vname}\"), \
                                 ::serde::Value::Obj(vec![{}]))]),\n",
                                pushes.join(", ")
                            )
                        }
                    }
                })
                .collect();
            let stream_arms: String = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.shape {
                        VariantShape::Unit => {
                            format!("{name}::{vname} => s.str(\"{vname}\"),\n")
                        }
                        VariantShape::Tuple(arity) => {
                            let binds: Vec<String> = (0..*arity).map(|i| format!("f{i}")).collect();
                            let inner = if *arity == 1 {
                                "::serde::Serialize::serialize(f0, s);\n".to_string()
                            } else {
                                let elems: String = binds
                                    .iter()
                                    .map(|b| {
                                        format!(
                                            "s.elem();\n\
                                             ::serde::Serialize::serialize({b}, s);\n"
                                        )
                                    })
                                    .collect();
                                format!("s.begin_arr();\n{elems}s.end_arr();\n")
                            };
                            format!(
                                "{name}::{vname}({binds}) => {{\n\
                                     s.begin_obj();\n\
                                     s.key(\"{vname}\");\n\
                                     {inner}\
                                     s.end_obj();\n\
                                 }}\n",
                                binds = binds.join(", ")
                            )
                        }
                        VariantShape::Struct(fields) => {
                            let binds = fields.join(", ");
                            let streams: String = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "s.key(\"{f}\");\n\
                                         ::serde::Serialize::serialize({f}, s);\n"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vname} {{ {binds} }} => {{\n\
                                     s.begin_obj();\n\
                                     s.key(\"{vname}\");\n\
                                     s.begin_obj();\n\
                                     {streams}\
                                     s.end_obj();\n\
                                     s.end_obj();\n\
                                 }}\n"
                            )
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{\n{arms}}}\n\
                     }}\n\
                     fn serialize(&self, s: &mut dyn ::serde::Serializer) {{\n\
                         match self {{\n{stream_arms}}}\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse()
        .expect("serde_derive: generated invalid Rust for Serialize")
}

/// The `field: ...` initializer for one named field, with serde-style
/// handling of absent keys (errors unless the type opts in, e.g. `Option`).
fn named_field_init(owner: &str, source: &str, field: &str) -> String {
    format!(
        "{field}: match {source}.get(\"{field}\") {{\n\
             Some(v) => ::serde::Deserialize::from_value(v)?,\n\
             None => ::serde::Deserialize::absent().ok_or_else(|| \
                 ::serde::Error::msg(\"missing field `{field}` in {owner}\"))?,\n\
         }},\n"
    )
}

/// Derive `serde::Deserialize` (vendored value-tree flavour).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let shape = parse_item(input);
    let code = match shape {
        Shape::NamedStruct { name, fields } => {
            let inits: String = fields
                .iter()
                .map(|f| named_field_init(&name, "v", f))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> Result<Self, ::serde::Error> {{\n\
                         match v {{\n\
                             ::serde::Value::Obj(_) => Ok({name} {{\n{inits}}}),\n\
                             other => Err(::serde::Error::msg(format!(\
                                 \"expected object for {name}, got {{}}\", other.kind()))),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
        Shape::TupleStruct { name, arity } => {
            let body = if arity == 1 {
                format!("Ok({name}(::serde::Deserialize::from_value(v)?))")
            } else {
                let items: Vec<String> = (0..arity)
                    .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                    .collect();
                format!(
                    "match v {{\n\
                         ::serde::Value::Arr(items) if items.len() == {arity} => \
                             Ok({name}({items})),\n\
                         other => Err(::serde::Error::msg(format!(\
                             \"expected {arity}-element array for {name}, got {{}}\", \
                             other.kind()))),\n\
                     }}",
                    items = items.join(", ")
                )
            };
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> Result<Self, ::serde::Error> {{\n\
                         {body}\n\
                     }}\n\
                 }}"
            )
        }
        Shape::UnitStruct { name } => format!(
            "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(_v: &::serde::Value) -> Result<Self, ::serde::Error> {{\n\
                     Ok({name})\n\
                 }}\n\
             }}"
        ),
        Shape::Enum { name, variants } => {
            let unit_arms: String = variants
                .iter()
                .filter(|v| matches!(v.shape, VariantShape::Unit))
                .map(|v| format!("\"{vn}\" => Ok({name}::{vn}),\n", vn = v.name))
                .collect();
            let tagged_arms: String = variants
                .iter()
                .filter(|v| !matches!(v.shape, VariantShape::Unit))
                .map(|v| {
                    let vn = &v.name;
                    match &v.shape {
                        VariantShape::Unit => unreachable!(),
                        VariantShape::Tuple(arity) if *arity == 1 => format!(
                            "\"{vn}\" => Ok({name}::{vn}(\
                             ::serde::Deserialize::from_value(inner)?)),\n"
                        ),
                        VariantShape::Tuple(arity) => {
                            let items: Vec<String> = (0..*arity)
                                .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                                .collect();
                            format!(
                                "\"{vn}\" => match inner {{\n\
                                     ::serde::Value::Arr(items) if items.len() == {arity} => \
                                         Ok({name}::{vn}({items})),\n\
                                     other => Err(::serde::Error::msg(format!(\
                                         \"expected {arity}-element array for {name}::{vn}, \
                                         got {{}}\", other.kind()))),\n\
                                 }},\n",
                                items = items.join(", ")
                            )
                        }
                        VariantShape::Struct(fields) => {
                            let inits: String = fields
                                .iter()
                                .map(|f| named_field_init(&format!("{name}::{vn}"), "inner", f))
                                .collect();
                            format!(
                                "\"{vn}\" => match inner {{\n\
                                     ::serde::Value::Obj(_) => Ok({name}::{vn} {{\n{inits}}}),\n\
                                     other => Err(::serde::Error::msg(format!(\
                                         \"expected object for {name}::{vn}, got {{}}\", \
                                         other.kind()))),\n\
                                 }},\n"
                            )
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> Result<Self, ::serde::Error> {{\n\
                         match v {{\n\
                             ::serde::Value::Str(s) => match s.as_str() {{\n\
                                 {unit_arms}\
                                 other => Err(::serde::Error::msg(format!(\
                                     \"unknown unit variant `{{other}}` for {name}\"))),\n\
                             }},\n\
                             ::serde::Value::Obj(pairs) if pairs.len() == 1 => {{\n\
                                 let (tag, inner) = &pairs[0];\n\
                                 let _ = inner;\n\
                                 match tag.as_str() {{\n\
                                     {tagged_arms}\
                                     other => Err(::serde::Error::msg(format!(\
                                         \"unknown variant `{{other}}` for {name}\"))),\n\
                                 }}\n\
                             }}\n\
                             other => Err(::serde::Error::msg(format!(\
                                 \"expected variant of {name}, got {{}}\", other.kind()))),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse()
        .expect("serde_derive: generated invalid Rust for Deserialize")
}
