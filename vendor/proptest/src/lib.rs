//! Minimal, dependency-free stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this crate vendors
//! the surface the workspace's property tests use: the [`Strategy`] trait
//! with [`Strategy::prop_map`], numeric range strategies, tuple strategies,
//! `prop::collection::vec`, [`ProptestConfig`], and the `proptest!`,
//! `prop_assert!`, `prop_assert_eq!`, `prop_assume!` macros.
//!
//! Differences from real proptest: cases are generated from a fixed
//! deterministic seed sequence (no `PROPTEST_*` env handling, no persisted
//! failure files) and failing cases are **not shrunk** — the assertion
//! message simply reports the failing case index, which reproduces
//! deterministically.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use rand::rngs::StdRng;
use rand::Rng;
use std::ops::Range;

pub use rand::SeedableRng as _;

/// Runner configuration (mirrors `proptest::test_runner::Config`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// The RNG handed to strategies; deterministic per (test, case index).
pub type TestRng = StdRng;

/// Build the RNG for one case. Public because the `proptest!` macro expands
/// to calls of it; not part of the mirrored API.
#[doc(hidden)]
pub fn rng_for_case(case: u32) -> TestRng {
    use rand::SeedableRng;
    StdRng::seed_from_u64(
        0x5EED_0000_0000_0000u64 ^ (u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
    )
}

/// A generator of random values (mirrors `proptest::strategy::Strategy`,
/// minus shrinking).
pub trait Strategy {
    /// The type of value this strategy generates.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f` (mirrors `Strategy::prop_map`).
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(f32, f64, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+ $(,)?))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
}

/// A strategy that always yields a clone of one value (mirrors
/// `proptest::strategy::Just`).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Mirrors the `proptest::prop` module paths used in tests.
pub mod prop {
    /// Boolean strategies (`prop::bool::ANY`).
    pub mod bool {
        use super::super::{Strategy, TestRng};
        use rand::Rng;

        /// The strategy type behind [`ANY`].
        #[derive(Debug, Clone, Copy)]
        pub struct Any;

        /// Uniformly random `bool` (mirrors `proptest::bool::ANY`).
        pub const ANY: Any = Any;

        impl Strategy for Any {
            type Value = bool;

            fn generate(&self, rng: &mut TestRng) -> bool {
                rng.gen()
            }
        }
    }

    /// Collection strategies (`prop::collection::vec`).
    pub mod collection {
        use super::super::{Strategy, TestRng};
        use rand::Rng;
        use std::ops::Range;

        /// Strategy for `Vec`s with random length drawn from `len`.
        pub struct VecStrategy<S> {
            element: S,
            len: Range<usize>,
        }

        /// Generate `Vec`s whose elements come from `element` and whose
        /// length is uniform in `len`.
        pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
            assert!(!len.is_empty(), "empty length range");
            VecStrategy { element, len }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let n = rng.gen_range(self.len.clone());
                (0..n).map(|_| self.element.generate(rng)).collect()
            }
        }
    }
}

/// Everything the tests import (mirrors `proptest::prelude`).
pub mod prelude {
    pub use crate::{
        prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just,
        ProptestConfig, Strategy,
    };
}

/// Assert a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+);
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        assert_eq!($left, $right);
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        assert_eq!($left, $right, $($fmt)+);
    };
}

/// Assert inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        assert_ne!($left, $right);
    };
}

/// Skip the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
}

/// Define property tests (mirrors `proptest::proptest!`, minus shrinking).
///
/// Each `fn name(arg in strategy, ...) { body }` becomes a `#[test]` that
/// runs `config.cases` deterministic random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@funcs ($cfg) $($rest)*);
    };
    (@funcs ($cfg:expr)) => {};
    (@funcs ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            for case in 0..config.cases {
                let mut proptest_rng = $crate::rng_for_case(case);
                $(
                    let $arg = $crate::Strategy::generate(&($strat), &mut proptest_rng);
                )+
                // Run the body in a closure so `prop_assume!` can skip the
                // case with an early return.
                (move || $body)();
            }
        }
        $crate::proptest!(@funcs ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@funcs ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn pair_strategy() -> impl Strategy<Value = (f64, usize)> {
        (0.5_f64..2.0, 1usize..10).prop_map(|(x, n)| (x * 2.0, n + 1))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_maps_stay_in_bounds(
            pair in pair_strategy(),
            xs in prop::collection::vec(0.0_f64..1.0, 3..20),
        ) {
            let (x, n) = pair;
            prop_assert!((1.0..4.0).contains(&x));
            prop_assert!((2..=10).contains(&n));
            prop_assert!(xs.len() >= 3 && xs.len() < 20);
            prop_assume!(!xs.is_empty());
            prop_assert!(xs.iter().all(|v| (0.0..1.0).contains(v)));
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let a = prop::collection::vec(0.0_f64..1.0, 3..9).generate(&mut crate::rng_for_case(5));
        let b = prop::collection::vec(0.0_f64..1.0, 3..9).generate(&mut crate::rng_for_case(5));
        assert_eq!(a, b);
    }
}
