//! Minimal, dependency-free stand-in for `serde` (plus its derive macros).
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! a drastically simplified serialization framework with the same *surface*
//! as serde: `#[derive(Serialize, Deserialize)]`, `use serde::{Serialize,
//! Deserialize}`, and a `serde_json` companion crate providing
//! `to_string`/`from_str`.
//!
//! Instead of serde's zero-copy visitor architecture, everything round-trips
//! through an owned [`Value`] tree (null / bool / number / string / array /
//! object). That is entirely sufficient for the workspace's needs — caching
//! generated traces and model snapshots as JSON — at the cost of an extra
//! allocation pass that real serde avoids.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::collections::VecDeque;
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// An owned, self-describing data tree — the interchange format between
/// [`Serialize`]/[`Deserialize`] impls and data formats such as `serde_json`.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null` (also the encoding of `Option::None`).
    Null,
    /// A boolean.
    Bool(bool),
    /// A floating-point number.
    Num(f64),
    /// A signed integer, kept exact (an `i64` does not fit in `f64` above
    /// 2⁵³ — RNG states and tenant seeds in checkpoints are full-range).
    Int(i64),
    /// An unsigned integer, kept exact (see [`Value::Int`]).
    UInt(u64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Arr(Vec<Value>),
    /// An ordered map with string keys (insertion order preserved).
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Look up `key` in an [`Value::Obj`]; `None` for other variants or
    /// missing keys.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// A short human-readable name for the variant, used in error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Num(_) => "number",
            Value::Int(_) => "integer",
            Value::UInt(_) => "unsigned integer",
            Value::Str(_) => "string",
            Value::Arr(_) => "array",
            Value::Obj(_) => "object",
        }
    }
}

/// Error raised when a [`Value`] cannot be interpreted as the requested type.
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    /// Build an error with the given message.
    pub fn msg(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Types that can be converted into a [`Value`] tree.
pub trait Serialize {
    /// Convert `self` into a [`Value`].
    fn to_value(&self) -> Value;
}

/// Types that can be reconstructed from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Reconstruct `Self` from a [`Value`].
    fn from_value(v: &Value) -> Result<Self, Error>;

    /// The value to use when a struct field is absent entirely.
    ///
    /// `None` means "absence is an error" (the default); `Option<T>`
    /// overrides this to `Some(None)` so missing optional fields
    /// deserialize to `None`, matching serde's behaviour.
    fn absent() -> Option<Self> {
        None
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }

    fn absent() -> Option<Self> {
        T::absent().map(Box::new)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::msg(format!("expected bool, got {}", other.kind()))),
        }
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Num(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Num(x) => Ok(*x),
            // Integer tokens are a valid encoding of a float (the writer
            // emits `1` for `1.0_f64`); convert with the usual rounding.
            Value::Int(i) => Ok(*i as f64),
            Value::UInt(u) => Ok(*u as f64),
            other => Err(Error::msg(format!("expected number, got {}", other.kind()))),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Num(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|x| x as f32)
    }
}

/// Shared float fallback for integer targets: accept a `Value::Num` only
/// when it is an exact integer in range (legacy files and `1.0`-style JSON).
fn int_from_f64<T: TryFrom<i64>>(x: f64, ty: &'static str) -> Result<T, Error> {
    if x.fract() != 0.0 {
        return Err(Error::msg(format!(
            "expected integer, got fractional number {x}"
        )));
    }
    if x < i64::MIN as f64 || x >= i64::MAX as f64 {
        return Err(Error::msg(format!("number {x} out of range for {ty}")));
    }
    T::try_from(x as i64).map_err(|_| Error::msg(format!("number {x} out of range for {ty}")))
}

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::UInt(u) => <$t>::try_from(*u).map_err(|_| {
                        Error::msg(format!(
                            "number {u} out of range for {}",
                            stringify!($t)
                        ))
                    }),
                    Value::Int(i) => u64::try_from(*i)
                        .ok()
                        .and_then(|u| <$t>::try_from(u).ok())
                        .ok_or_else(|| {
                            Error::msg(format!(
                                "number {i} out of range for {}",
                                stringify!($t)
                            ))
                        }),
                    Value::Num(x) => {
                        let wide: u64 = if *x >= 0.0 && x.fract() == 0.0 && *x < u64::MAX as f64 {
                            *x as u64
                        } else {
                            return Err(Error::msg(format!(
                                "number {x} out of range for {}",
                                stringify!($t)
                            )));
                        };
                        <$t>::try_from(wide).map_err(|_| {
                            Error::msg(format!(
                                "number {x} out of range for {}",
                                stringify!($t)
                            ))
                        })
                    }
                    other => Err(Error::msg(format!(
                        "expected integer, got {}",
                        other.kind()
                    ))),
                }
            }
        }
    )*};
}
impl_serde_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_sint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Int(i) => <$t>::try_from(*i).map_err(|_| {
                        Error::msg(format!(
                            "number {i} out of range for {}",
                            stringify!($t)
                        ))
                    }),
                    Value::UInt(u) => i64::try_from(*u)
                        .ok()
                        .and_then(|i| <$t>::try_from(i).ok())
                        .ok_or_else(|| {
                            Error::msg(format!(
                                "number {u} out of range for {}",
                                stringify!($t)
                            ))
                        }),
                    Value::Num(x) => int_from_f64::<i64>(*x, stringify!($t)).and_then(|i| {
                        <$t>::try_from(i).map_err(|_| {
                            Error::msg(format!(
                                "number {x} out of range for {}",
                                stringify!($t)
                            ))
                        })
                    }),
                    other => Err(Error::msg(format!(
                        "expected integer, got {}",
                        other.kind()
                    ))),
                }
            }
        }
    )*};
}
impl_serde_sint!(i8, i16, i32, i64, isize);

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::msg(format!("expected string, got {}", other.kind()))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }

    fn absent() -> Option<Self> {
        Some(None)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Arr(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::msg(format!("expected array, got {}", other.kind()))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for VecDeque<T> {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for VecDeque<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Vec::<T>::from_value(v).map(VecDeque::from)
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Arr(items) if items.len() == N => {
                let vec: Vec<T> = items.iter().map(T::from_value).collect::<Result<_, _>>()?;
                vec.try_into()
                    .map_err(|_| Error::msg("array length mismatch"))
            }
            other => Err(Error::msg(format!(
                "expected {N}-element array, got {}",
                other.kind()
            ))),
        }
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Arr(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Arr(items) if items.len() == 2 => {
                Ok((A::from_value(&items[0])?, B::from_value(&items[1])?))
            }
            other => Err(Error::msg(format!(
                "expected 2-element array, got {}",
                other.kind()
            ))),
        }
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Arr(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
        ])
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Arr(items) if items.len() == 3 => Ok((
                A::from_value(&items[0])?,
                B::from_value(&items[1])?,
                C::from_value(&items[2])?,
            )),
            other => Err(Error::msg(format!(
                "expected 3-element array, got {}",
                other.kind()
            ))),
        }
    }
}
