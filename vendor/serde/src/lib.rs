//! Minimal, dependency-free stand-in for `serde` (plus its derive macros).
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! a drastically simplified serialization framework with the same *surface*
//! as serde: `#[derive(Serialize, Deserialize)]`, `use serde::{Serialize,
//! Deserialize}`, and a `serde_json` companion crate providing
//! `to_string`/`from_str`.
//!
//! Instead of serde's zero-copy visitor architecture, everything round-trips
//! through an owned [`Value`] tree (null / bool / number / string / array /
//! object). That is entirely sufficient for the workspace's needs — caching
//! generated traces and model snapshots as JSON — at the cost of an extra
//! allocation pass that real serde avoids.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::collections::VecDeque;
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// An owned, self-describing data tree — the interchange format between
/// [`Serialize`]/[`Deserialize`] impls and data formats such as `serde_json`.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null` (also the encoding of `Option::None`).
    Null,
    /// A boolean.
    Bool(bool),
    /// A floating-point number.
    Num(f64),
    /// A signed integer, kept exact (an `i64` does not fit in `f64` above
    /// 2⁵³ — RNG states and tenant seeds in checkpoints are full-range).
    Int(i64),
    /// An unsigned integer, kept exact (see [`Value::Int`]).
    UInt(u64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Arr(Vec<Value>),
    /// An ordered map with string keys (insertion order preserved).
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Look up `key` in an [`Value::Obj`]; `None` for other variants or
    /// missing keys.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// A short human-readable name for the variant, used in error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Num(_) => "number",
            Value::Int(_) => "integer",
            Value::UInt(_) => "unsigned integer",
            Value::Str(_) => "string",
            Value::Arr(_) => "array",
            Value::Obj(_) => "object",
        }
    }
}

/// Error raised when a [`Value`] cannot be interpreted as the requested type.
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    /// Build an error with the given message.
    pub fn msg(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// A streaming output sink for [`Serialize::serialize`].
///
/// Data formats (e.g. the vendored `serde_json`) implement this to receive
/// serialization events directly, skipping the intermediate [`Value`] tree
/// that [`Serialize::to_value`] builds. The trait is object-safe and
/// infallible: sinks buffer into memory and surface I/O separately.
///
/// Calls follow the obvious grammar: a scalar call, or
/// `begin_arr (elem value)* end_arr`, or `begin_obj (key value)* end_obj`,
/// where `value` is itself one serialized value.
pub trait Serializer {
    /// Emit a `null`.
    fn null(&mut self);
    /// Emit a boolean.
    fn boolean(&mut self, b: bool);
    /// Emit a floating-point number (non-finite values encode as `null`,
    /// matching the [`Value::Num`] tree path).
    fn num(&mut self, x: f64);
    /// Emit a signed integer, kept exact.
    fn int(&mut self, i: i64);
    /// Emit an unsigned integer, kept exact.
    fn uint(&mut self, u: u64);
    /// Emit a string.
    fn str(&mut self, s: &str);
    /// Begin an array.
    fn begin_arr(&mut self);
    /// Announce the next array element (called before each element's value).
    fn elem(&mut self);
    /// End an array.
    fn end_arr(&mut self);
    /// Begin an object.
    fn begin_obj(&mut self);
    /// Emit the next object key (called before each member's value).
    fn key(&mut self, k: &str);
    /// End an object.
    fn end_obj(&mut self);
}

/// Stream a [`Value`] tree into a [`Serializer`].
///
/// This is the bridge between the two serialization flavours: any
/// `Serialize` impl that only provides `to_value` still works with
/// streaming sinks (via the default [`Serialize::serialize`]), and the two
/// paths produce identical event sequences for equal trees.
pub fn serialize_value(v: &Value, s: &mut dyn Serializer) {
    match v {
        Value::Null => s.null(),
        Value::Bool(b) => s.boolean(*b),
        Value::Num(x) => s.num(*x),
        Value::Int(i) => s.int(*i),
        Value::UInt(u) => s.uint(*u),
        Value::Str(text) => s.str(text),
        Value::Arr(items) => {
            s.begin_arr();
            for item in items {
                s.elem();
                serialize_value(item, s);
            }
            s.end_arr();
        }
        Value::Obj(pairs) => {
            s.begin_obj();
            for (k, item) in pairs {
                s.key(k);
                serialize_value(item, s);
            }
            s.end_obj();
        }
    }
}

/// Types that can be converted into a [`Value`] tree.
pub trait Serialize {
    /// Convert `self` into a [`Value`].
    fn to_value(&self) -> Value;

    /// Stream `self` into a [`Serializer`] without building a [`Value`].
    ///
    /// The default falls back through [`Serialize::to_value`], so manual
    /// impls stay correct; derived impls and the built-in impls below
    /// override it with direct streaming. The contract is that both paths
    /// emit the same event sequence.
    fn serialize(&self, s: &mut dyn Serializer) {
        serialize_value(&self.to_value(), s);
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }

    fn serialize(&self, s: &mut dyn Serializer) {
        serialize_value(self, s);
    }
}

/// Types that can be reconstructed from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Reconstruct `Self` from a [`Value`].
    fn from_value(v: &Value) -> Result<Self, Error>;

    /// The value to use when a struct field is absent entirely.
    ///
    /// `None` means "absence is an error" (the default); `Option<T>`
    /// overrides this to `Some(None)` so missing optional fields
    /// deserialize to `None`, matching serde's behaviour.
    fn absent() -> Option<Self> {
        None
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }

    fn serialize(&self, s: &mut dyn Serializer) {
        (**self).serialize(s);
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }

    fn serialize(&self, s: &mut dyn Serializer) {
        (**self).serialize(s);
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }

    fn absent() -> Option<Self> {
        T::absent().map(Box::new)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }

    fn serialize(&self, s: &mut dyn Serializer) {
        s.boolean(*self);
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::msg(format!("expected bool, got {}", other.kind()))),
        }
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Num(*self)
    }

    fn serialize(&self, s: &mut dyn Serializer) {
        s.num(*self);
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Num(x) => Ok(*x),
            // Integer tokens are a valid encoding of a float (the writer
            // emits `1` for `1.0_f64`); convert with the usual rounding.
            Value::Int(i) => Ok(*i as f64),
            Value::UInt(u) => Ok(*u as f64),
            other => Err(Error::msg(format!("expected number, got {}", other.kind()))),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Num(f64::from(*self))
    }

    fn serialize(&self, s: &mut dyn Serializer) {
        s.num(f64::from(*self));
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|x| x as f32)
    }
}

/// Shared float fallback for integer targets: accept a `Value::Num` only
/// when it is an exact integer in range (legacy files and `1.0`-style JSON).
fn int_from_f64<T: TryFrom<i64>>(x: f64, ty: &'static str) -> Result<T, Error> {
    if x.fract() != 0.0 {
        return Err(Error::msg(format!(
            "expected integer, got fractional number {x}"
        )));
    }
    if x < i64::MIN as f64 || x >= i64::MAX as f64 {
        return Err(Error::msg(format!("number {x} out of range for {ty}")));
    }
    T::try_from(x as i64).map_err(|_| Error::msg(format!("number {x} out of range for {ty}")))
}

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }

            fn serialize(&self, s: &mut dyn Serializer) {
                s.uint(*self as u64);
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::UInt(u) => <$t>::try_from(*u).map_err(|_| {
                        Error::msg(format!(
                            "number {u} out of range for {}",
                            stringify!($t)
                        ))
                    }),
                    Value::Int(i) => u64::try_from(*i)
                        .ok()
                        .and_then(|u| <$t>::try_from(u).ok())
                        .ok_or_else(|| {
                            Error::msg(format!(
                                "number {i} out of range for {}",
                                stringify!($t)
                            ))
                        }),
                    Value::Num(x) => {
                        let wide: u64 = if *x >= 0.0 && x.fract() == 0.0 && *x < u64::MAX as f64 {
                            *x as u64
                        } else {
                            return Err(Error::msg(format!(
                                "number {x} out of range for {}",
                                stringify!($t)
                            )));
                        };
                        <$t>::try_from(wide).map_err(|_| {
                            Error::msg(format!(
                                "number {x} out of range for {}",
                                stringify!($t)
                            ))
                        })
                    }
                    other => Err(Error::msg(format!(
                        "expected integer, got {}",
                        other.kind()
                    ))),
                }
            }
        }
    )*};
}
impl_serde_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_sint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }

            fn serialize(&self, s: &mut dyn Serializer) {
                s.int(*self as i64);
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Int(i) => <$t>::try_from(*i).map_err(|_| {
                        Error::msg(format!(
                            "number {i} out of range for {}",
                            stringify!($t)
                        ))
                    }),
                    Value::UInt(u) => i64::try_from(*u)
                        .ok()
                        .and_then(|i| <$t>::try_from(i).ok())
                        .ok_or_else(|| {
                            Error::msg(format!(
                                "number {u} out of range for {}",
                                stringify!($t)
                            ))
                        }),
                    Value::Num(x) => int_from_f64::<i64>(*x, stringify!($t)).and_then(|i| {
                        <$t>::try_from(i).map_err(|_| {
                            Error::msg(format!(
                                "number {x} out of range for {}",
                                stringify!($t)
                            ))
                        })
                    }),
                    other => Err(Error::msg(format!(
                        "expected integer, got {}",
                        other.kind()
                    ))),
                }
            }
        }
    )*};
}
impl_serde_sint!(i8, i16, i32, i64, isize);

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }

    fn serialize(&self, s: &mut dyn Serializer) {
        s.str(self);
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::msg(format!("expected string, got {}", other.kind()))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }

    fn serialize(&self, s: &mut dyn Serializer) {
        s.str(self);
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }

    fn serialize(&self, s: &mut dyn Serializer) {
        match self {
            Some(x) => x.serialize(s),
            None => s.null(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }

    fn absent() -> Option<Self> {
        Some(None)
    }
}

/// Shared streaming body for slice-shaped containers.
fn serialize_seq<'a, T: Serialize + 'a>(
    items: impl Iterator<Item = &'a T>,
    s: &mut dyn Serializer,
) {
    s.begin_arr();
    for item in items {
        s.elem();
        item.serialize(s);
    }
    s.end_arr();
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }

    fn serialize(&self, s: &mut dyn Serializer) {
        serialize_seq(self.iter(), s);
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Arr(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::msg(format!("expected array, got {}", other.kind()))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }

    fn serialize(&self, s: &mut dyn Serializer) {
        serialize_seq(self.iter(), s);
    }
}

impl<T: Serialize> Serialize for VecDeque<T> {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }

    fn serialize(&self, s: &mut dyn Serializer) {
        serialize_seq(self.iter(), s);
    }
}

impl<T: Deserialize> Deserialize for VecDeque<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Vec::<T>::from_value(v).map(VecDeque::from)
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }

    fn serialize(&self, s: &mut dyn Serializer) {
        serialize_seq(self.iter(), s);
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Arr(items) if items.len() == N => {
                let vec: Vec<T> = items.iter().map(T::from_value).collect::<Result<_, _>>()?;
                vec.try_into()
                    .map_err(|_| Error::msg("array length mismatch"))
            }
            other => Err(Error::msg(format!(
                "expected {N}-element array, got {}",
                other.kind()
            ))),
        }
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Arr(vec![self.0.to_value(), self.1.to_value()])
    }

    fn serialize(&self, s: &mut dyn Serializer) {
        s.begin_arr();
        s.elem();
        self.0.serialize(s);
        s.elem();
        self.1.serialize(s);
        s.end_arr();
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Arr(items) if items.len() == 2 => {
                Ok((A::from_value(&items[0])?, B::from_value(&items[1])?))
            }
            other => Err(Error::msg(format!(
                "expected 2-element array, got {}",
                other.kind()
            ))),
        }
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Arr(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
        ])
    }

    fn serialize(&self, s: &mut dyn Serializer) {
        s.begin_arr();
        s.elem();
        self.0.serialize(s);
        s.elem();
        self.1.serialize(s);
        s.elem();
        self.2.serialize(s);
        s.end_arr();
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Arr(items) if items.len() == 3 => Ok((
                A::from_value(&items[0])?,
                B::from_value(&items[1])?,
                C::from_value(&items[2])?,
            )),
            other => Err(Error::msg(format!(
                "expected 3-element array, got {}",
                other.kind()
            ))),
        }
    }
}
