//! Minimal, dependency-free stand-in for the `criterion` benchmark harness.
//!
//! The build environment has no access to crates.io, so this crate provides
//! the API surface the workspace's benches use — `Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`, `BenchmarkId`,
//! `Throughput`, and the `criterion_group!`/`criterion_main!` macros — backed
//! by a simple mean-of-N wall-clock timer instead of criterion's full
//! statistical machinery. Results print one line per benchmark:
//!
//! ```text
//! admm_fit_vs_series_length/250  time: 12.345 ms  (10 samples)
//! ```
//!
//! Two extensions beyond upstream criterion's CLI are recognized after the
//! `--` separator of `cargo bench`:
//!
//! * `--json <path>` — write every benchmark's mean time to `<path>` as a
//!   JSON document (`{"benchmarks": [{"id", "mean_seconds", "samples"}]}`),
//!   so perf trajectories can be committed and diffed across PRs;
//! * `--quick` — run exactly one timed iteration per benchmark (after the
//!   warm-up call), the smoke mode CI uses to keep bench targets compiling
//!   and running without paying for full timings.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::fmt::Display;
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

/// CLI options recognized by the stand-in (everything else, including the
/// flags cargo itself appends such as `--bench`, is ignored).
#[derive(Debug, Default, Clone)]
struct CliOptions {
    json_path: Option<String>,
    quick: bool,
}

fn cli_options() -> &'static CliOptions {
    static OPTIONS: OnceLock<CliOptions> = OnceLock::new();
    OPTIONS.get_or_init(|| {
        let mut options = CliOptions::default();
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--json" => options.json_path = args.next(),
                "--quick" => options.quick = true,
                _ => {}
            }
        }
        options
    })
}

/// One completed measurement, retained for `--json` reporting.
struct Measurement {
    id: String,
    mean_seconds: f64,
    samples: usize,
}

fn measurements() -> &'static Mutex<Vec<Measurement>> {
    static MEASUREMENTS: OnceLock<Mutex<Vec<Measurement>>> = OnceLock::new();
    MEASUREMENTS.get_or_init(|| Mutex::new(Vec::new()))
}

fn json_escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

/// Write the collected measurements to the `--json` path, if one was given.
/// Called by [`criterion_main!`] after every group has run; harmless to call
/// when no `--json` flag is present.
pub fn finalize() {
    let Some(path) = cli_options().json_path.as_deref() else {
        return;
    };
    let measurements = measurements().lock().expect("measurement registry");
    let mut out = String::from("{\n  \"benchmarks\": [\n");
    for (i, m) in measurements.iter().enumerate() {
        let comma = if i + 1 < measurements.len() { "," } else { "" };
        out.push_str(&format!(
            "    {{\"id\": \"{}\", \"mean_seconds\": {:e}, \"samples\": {}}}{comma}\n",
            json_escape(&m.id),
            m.mean_seconds,
            m.samples
        ));
    }
    out.push_str("  ]\n}\n");
    if let Err(err) = std::fs::write(path, out) {
        eprintln!("criterion stand-in: failed to write {path}: {err}");
        std::process::exit(1);
    }
    println!("wrote {} benchmark result(s) to {path}", measurements.len());
}

/// Re-export of [`std::hint::black_box`], criterion's optimization barrier.
pub use std::hint::black_box;

/// Entry point handed to each benchmark function (mirrors
/// `criterion::Criterion`).
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Process command-line arguments (accepted for API compatibility; the
    /// stand-in ignores them).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Override the default number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _criterion: self,
        }
    }

    /// Time a standalone benchmark function.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.into(), self.sample_size, |b| f(b));
        self
    }
}

/// A named collection of benchmarks sharing configuration (mirrors
/// `criterion::BenchmarkGroup`).
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Override the number of timed samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Record the logical throughput of each iteration (accepted for API
    /// compatibility; the stand-in only prints timings).
    pub fn throughput(&mut self, _throughput: Throughput) -> &mut Self {
        self
    }

    /// Time a benchmark within this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_one(
            &format!("{}/{}", self.name, id.label()),
            self.sample_size,
            |b| f(b),
        );
        self
    }

    /// Time a benchmark that borrows a prepared input.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        run_one(
            &format!("{}/{}", self.name, id.label()),
            self.sample_size,
            |b| f(b, input),
        );
        self
    }

    /// Finish the group (no-op; exists for API compatibility).
    pub fn finish(self) {}
}

/// Identifier for one benchmark within a group (mirrors
/// `criterion::BenchmarkId`).
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A benchmark named `name`, parameterized by `parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", name.into(), parameter),
        }
    }

    /// A benchmark identified by its parameter value alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }

    fn label(&self) -> &str {
        &self.label
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            label: s.to_string(),
        }
    }
}

/// Logical work performed per iteration (mirrors `criterion::Throughput`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Timing driver passed to benchmark closures (mirrors
/// `criterion::Bencher`).
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `iterations` calls of `routine` and record the total.
    pub fn iter<O, F>(&mut self, mut routine: F)
    where
        F: FnMut() -> O,
    {
        let start = Instant::now();
        for _ in 0..self.iterations {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_one<F>(label: &str, sample_size: usize, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let sample_size = if cli_options().quick { 1 } else { sample_size };
    // One warm-up call, then `sample_size` timed iterations in one batch.
    let mut warmup = Bencher {
        iterations: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut warmup);
    let mut bencher = Bencher {
        iterations: sample_size as u64,
        elapsed: Duration::ZERO,
    };
    f(&mut bencher);
    let mean = bencher.elapsed.as_secs_f64() / sample_size as f64;
    println!(
        "{label:<60} time: {:>12}  ({sample_size} samples)",
        format_time(mean)
    );
    measurements()
        .lock()
        .expect("measurement registry")
        .push(Measurement {
            id: label.to_string(),
            mean_seconds: mean,
            samples: sample_size,
        });
}

fn format_time(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.3} s")
    } else if seconds >= 1e-3 {
        format!("{:.3} ms", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:.3} µs", seconds * 1e6)
    } else {
        format!("{:.3} ns", seconds * 1e9)
    }
}

/// Define a benchmark group function, mirroring `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        /// Run every benchmark registered in this group.
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $(
                $target(&mut criterion);
            )+
        }
    };
}

/// Define the bench `main` function, mirroring `criterion::criterion_main!`.
///
/// After all groups have run, the collected measurements are written to the
/// `--json` path when one was passed (see the crate docs).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $(
                $group();
            )+
            $crate::finalize();
        }
    };
}
