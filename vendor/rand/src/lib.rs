//! Minimal, dependency-free stand-in for the parts of the `rand` crate this
//! workspace uses. The build environment has no access to crates.io, so the
//! workspace vendors exactly the API surface the sources rely on:
//!
//! - [`SeedableRng::seed_from_u64`] for deterministic, reproducible streams,
//! - [`rngs::StdRng`] (here a xoshiro256++ generator),
//! - [`Rng::gen`] for uniform `f64`/`f32`/`bool`/integers,
//! - [`Rng::gen_range`] over half-open and inclusive numeric ranges.
//!
//! The generator is *not* cryptographically secure — it exists to feed Monte
//! Carlo sampling and synthetic trace generation with good-quality,
//! reproducible uniform variates.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use core::ops::{Range, RangeInclusive};

/// Namespace mirroring `rand::rngs`.
pub mod rngs {
    pub use crate::StdRng;
}

/// A source of uniformly distributed 64-bit words.
pub trait RngCore {
    /// Return the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// RNGs that can be constructed deterministically from a seed.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be sampled uniformly from an [`RngCore`]
/// (the stand-in for rand's `Standard` distribution).
pub trait StandardSample: Sized {
    /// Draw one value from the standard uniform distribution of this type.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    #[inline]
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    #[inline]
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for bool {
    #[inline]
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            #[inline]
            fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u: $t = StandardSample::standard_sample(rng);
                self.start + (self.end - self.start) * u
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let u: $t = StandardSample::standard_sample(rng);
                lo + (hi - lo) * u
            }
        }
    )*};
}
impl_float_range!(f32, f64);

/// Uniform integer in `[0, span)` without modulo bias (Lemire's method,
/// widening-multiply rejection).
#[inline]
fn uniform_u64_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    let mut m = (rng.next_u64() as u128) * (span as u128);
    let mut low = m as u64;
    if low < span {
        let threshold = span.wrapping_neg() % span;
        while low < threshold {
            m = (rng.next_u64() as u128) * (span as u128);
            low = m as u64;
        }
    }
    (m >> 64) as u64
}

macro_rules! impl_uint_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + uniform_u64_below(rng, span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + uniform_u64_below(rng, span + 1) as $t
            }
        }
    )*};
}
impl_uint_range!(u8, u16, u32, u64, usize);

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                (self.start as i64).wrapping_add(uniform_u64_below(rng, span) as i64) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i64).wrapping_sub(lo as i64) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i64).wrapping_add(uniform_u64_below(rng, span + 1) as i64) as $t
            }
        }
    )*};
}
impl_int_range!(i8, i16, i32, i64, isize);

/// Convenience sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Sample a value from the standard uniform distribution of `T`
    /// (`f64`/`f32` in `[0, 1)`, all bit patterns for integers).
    #[inline]
    fn gen<T: StandardSample>(&mut self) -> T {
        T::standard_sample(self)
    }

    /// Sample uniformly from `range` (half-open or inclusive).
    #[inline]
    fn gen_range<T, Rr: SampleRange<T>>(&mut self, range: Rr) -> T {
        range.sample_in(self)
    }

    /// Return `true` with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// The workspace's standard RNG: xoshiro256++ seeded via SplitMix64.
///
/// Deterministic for a given seed, 2^256 − 1 period, and passes the usual
/// statistical batteries — more than enough for simulation and Monte Carlo.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

impl StdRng {
    /// The generator's full internal state — everything needed to resume
    /// the stream exactly where it is (checkpoint/restore support).
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Rebuild a generator from a [`StdRng::state`] snapshot. The restored
    /// generator continues the original stream bit for bit.
    ///
    /// The all-zero state is the one fixed point of xoshiro256++ (it only
    /// ever emits zeros); it cannot come from `state()` of a seeded
    /// generator, so it is mapped to a freshly seeded one.
    pub fn from_state(s: [u64; 4]) -> Self {
        if s == [0, 0, 0, 0] {
            return Self::seed_from_u64(0);
        }
        StdRng { s }
    }
}

impl SeedableRng for StdRng {
    fn seed_from_u64(state: u64) -> Self {
        // SplitMix64 expansion, as recommended by the xoshiro authors.
        let mut sm = state;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        StdRng {
            s: [next(), next(), next(), next()],
        }
    }
}

impl RngCore for StdRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn state_round_trip_resumes_the_stream() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..37 {
            rng.next_u64();
        }
        let mut resumed = StdRng::from_state(rng.state());
        for _ in 0..100 {
            assert_eq!(rng.next_u64(), resumed.next_u64());
        }
        // The degenerate all-zero state is rejected, not propagated.
        let mut z = StdRng::from_state([0; 4]);
        assert_ne!(z.next_u64(), 0);
    }

    #[test]
    fn unit_floats_are_in_range_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean} too far from 0.5");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x = rng.gen_range(-2.0..3.0);
            assert!((-2.0..3.0).contains(&x));
            let i = rng.gen_range(0..17usize);
            assert!(i < 17);
            let j = rng.gen_range(-5..=5i64);
            assert!((-5..=5).contains(&j));
        }
    }

    #[test]
    fn works_through_unsized_references() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.gen()
        }
        let mut rng = StdRng::seed_from_u64(1);
        let x = draw(&mut rng);
        assert!((0.0..1.0).contains(&x));
    }
}
