//! Property tests for the Monte Carlo decision engine's fast paths: the
//! flat-matrix arrival sampler with incremental horizon extension, and the
//! monotone inverse cursor over piecewise-constant intensities. Each fast
//! path must be *exactly* equivalent to its straightforward counterpart —
//! same seed, same samples, bit for bit.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use robustscaler::nhpp::{Intensity, InverseCursor, PiecewiseConstantIntensity};
use robustscaler::scaling::{
    decide, decide_with, ArrivalSampler, DecisionConfig, DecisionRule, DecisionScratch,
    PendingTimeModel,
};

/// Strategy: a piecewise-constant intensity with a handful of buckets,
/// including zero-rate buckets (each rate is zero with probability ~1/3),
/// but always a positive final rate so every cumulative mass is reachable.
fn intensity_strategy() -> impl Strategy<Value = PiecewiseConstantIntensity> {
    (
        prop::collection::vec((0.0_f64..3.0, prop::bool::ANY), 1..12),
        0.05_f64..40.0,
        -50.0_f64..50.0,
        0.01_f64..2.0,
    )
        .prop_map(|(raw_rates, bucket_width, start, tail_rate)| {
            let mut rates: Vec<f64> = raw_rates
                .into_iter()
                .map(|(rate, zero)| if zero { 0.0 } else { rate })
                .collect();
            rates.push(tail_rate);
            PiecewiseConstantIntensity::new(start, bucket_width, rates).unwrap()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Growing a sampler's horizon continues the per-path RNG streams, so
    /// `new(h1)` + `extend_horizon(h2)` equals a fresh `new(h2)` exactly —
    /// in particular the first h1 arrival columns (the "identical prefix")
    /// are untouched by the extension.
    #[test]
    fn extended_sampler_equals_fresh_full_horizon_sampler(
        intensity in intensity_strategy(),
        seed in 0u64..1_000,
        h1 in 1usize..12,
        extra in 1usize..12,
        replications in 1usize..80,
        now_offset in -5.0_f64..5.0,
    ) {
        let now = intensity.start() + now_offset;
        let h2 = h1 + extra;
        let mut rng_grown = StdRng::seed_from_u64(seed);
        let mut grown =
            ArrivalSampler::new(&intensity, now, h1, replications, &mut rng_grown).unwrap();
        let prefix: Vec<Vec<f64>> = (1..=h1)
            .map(|i| grown.arrival_samples(i).unwrap().to_vec())
            .collect();
        grown.extend_horizon(&intensity, h2);

        let mut rng_fresh = StdRng::seed_from_u64(seed);
        let fresh =
            ArrivalSampler::new(&intensity, now, h2, replications, &mut rng_fresh).unwrap();

        prop_assert_eq!(grown.horizon_arrivals(), h2);
        for i in 1..=h2 {
            prop_assert_eq!(
                grown.arrival_samples(i).unwrap(),
                fresh.arrival_samples(i).unwrap(),
                "arrival column {} differs", i
            );
        }
        // The extension did not disturb the previously sampled prefix.
        for (i, column) in prefix.iter().enumerate() {
            prop_assert_eq!(grown.arrival_samples(i + 1).unwrap(), &column[..]);
        }
        // Both consumed the same single draw from the caller's RNG.
        prop_assert_eq!(rng_grown, rng_fresh);
    }

    /// The monotone inverse cursor returns exactly what the stateless
    /// `inverse_integrated` returns, over random intensities with zero-rate
    /// buckets, random origins and nondecreasing target sequences — and a
    /// cursor resumed from a saved hint continues the sequence identically.
    #[test]
    fn inverse_cursor_matches_stateless_inversion(
        intensity in intensity_strategy(),
        from_offset in -10.0_f64..10.0,
        increments in prop::collection::vec(0.0_f64..5.0, 1..60),
        split_at in 0usize..60,
    ) {
        let from = intensity.start() + from_offset;
        let split = split_at.min(increments.len());
        let mut cursor = InverseCursor::new(&intensity, from);
        let mut target = 0.0;
        let mut resumed_after_split = None;
        for (step, inc) in increments.iter().enumerate() {
            if step == split {
                // Save and resume mid-sequence, as the sampler does when it
                // extends its horizon.
                resumed_after_split = Some(InverseCursor::resume(&intensity, from, cursor.hint()));
            }
            target += inc;
            let expected = intensity.inverse_integrated(from, target);
            let got = cursor.advance(target);
            prop_assert!(
                got == expected || (got.is_infinite() && expected.is_infinite()),
                "step {}: cursor {} vs stateless {}", step, got, expected
            );
            if let Some(resumed) = resumed_after_split.as_mut() {
                let resumed_got = resumed.advance(target);
                prop_assert!(
                    resumed_got == expected
                        || (resumed_got.is_infinite() && expected.is_infinite()),
                    "step {}: resumed cursor {} vs stateless {}", step, resumed_got, expected
                );
            }
        }
    }

    /// `decide_with` (validation hoisted, scratch buffers reused across
    /// calls) computes exactly the decisions of the allocating `decide`.
    #[test]
    fn scratch_decisions_match_allocating_decisions(
        seed in 0u64..1_000,
        rate in 0.05_f64..20.0,
        replications in 1usize..200,
        deterministic_pending in prop::bool::ANY,
        rule_kind in 0usize..3,
    ) {
        let intensity = PiecewiseConstantIntensity::new(0.0, 1e6, vec![rate]).unwrap();
        let mut sampler_rng = StdRng::seed_from_u64(seed);
        let sampler =
            ArrivalSampler::new(&intensity, 0.0, 5, replications, &mut sampler_rng).unwrap();
        let pending = if deterministic_pending {
            PendingTimeModel::Deterministic(13.0)
        } else {
            PendingTimeModel::LogNormal { mean: 13.0, std_dev: 4.0 }
        };
        let rule = match rule_kind {
            0 => DecisionRule::HittingProbability { alpha: 0.17 },
            1 => DecisionRule::ResponseTime { target_waiting: 2.5 },
            _ => DecisionRule::CostBudget { target_idle: 7.0 },
        };
        let config = DecisionConfig { rule, pending, monte_carlo_samples: replications };
        config.validate().unwrap();

        let mut scratch = DecisionScratch::new();
        let mut rng_a = StdRng::seed_from_u64(seed ^ 0x5EED);
        let mut rng_b = StdRng::seed_from_u64(seed ^ 0x5EED);
        for index in 1..=5 {
            let with_scratch =
                decide_with(&sampler, index, &config, &mut rng_a, &mut scratch).unwrap();
            let allocating = decide(&sampler, index, &config, &mut rng_b).unwrap();
            prop_assert_eq!(with_scratch, allocating, "index {}", index);
        }
    }
}
