//! Hibernating tenant store: the residency tier's equivalence and
//! memory-bounding contracts.
//!
//! The pinned contract is **transparency**: a fleet with paging enabled
//! (cold tenants leave memory, woken tenants page back in) produces
//! bit-identical round results, residency transitions and aggregate
//! stats to the same fleet with paging disabled (cold tenants merely
//! skipped in place), for any worker count. On top of that this suite
//! pins:
//!
//! - **memory bounding** — a `new_cold` fleet registers tenants without
//!   materializing scalers; only tenants that see traffic (or direct
//!   access) ever become resident;
//! - **round-trip paging** — access-woken virgin tenants that stay
//!   quiet re-hibernate through the page store and wake again from
//!   disk, bit-identically;
//! - **recording** — a cold-started session records residency
//!   transitions in its trace and replays strictly;
//! - **restore wiring** — `restore` marks the fleet un-rearmed;
//!   `restore_with` re-arms supervisor, faults and the page store.

use proptest::prelude::*;
use robustscaler::core::{RobustScalerConfig, RobustScalerVariant};
use robustscaler::online::{
    replay_path, BusConfig, FaultPlan, OnlineConfig, PolicyBands, ReplayMode, ResidencyConfig,
    RestoreOptions, SupervisorConfig, TenantFleet, TraceRecorder,
};
use std::path::PathBuf;

fn online_config() -> OnlineConfig {
    let mut pipeline =
        RobustScalerConfig::for_variant(RobustScalerVariant::HittingProbability { target: 0.9 });
    pipeline.bucket_width = 10.0;
    pipeline.periodicity_aggregation = 2;
    pipeline.admm.max_iterations = 30;
    pipeline.monte_carlo_samples = 60;
    pipeline.planning_interval = 20.0;
    pipeline.mean_processing = 5.0;
    pipeline.forecast_horizon = 400.0;
    let mut config = OnlineConfig::new(pipeline);
    config.window_buckets = 256;
    config.min_training_buckets = 10;
    config
}

fn residency_config() -> ResidencyConfig {
    ResidencyConfig {
        cold_after: 2,
        idle_epsilon: 1e-9,
        start_cold: true,
    }
}

fn bus_config() -> BusConfig {
    BusConfig {
        capacity_per_tenant: 4_096,
        tenants_per_group: 2,
        ..BusConfig::default()
    }
}

/// A fresh scratch directory under the (possibly CI-isolated) TMPDIR.
fn scratch(tag: &str) -> PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static N: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "robustscaler-hibernation-{tag}-{}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

const TENANTS: usize = 6;
/// Tenants that receive bus traffic; the rest stay dark.
const ACTIVE: [usize; 3] = [0, 1, 2];
/// The dark tenant the script wakes by direct access.
const POKED: usize = 4;

fn round_now(round: u64) -> f64 {
    400.0 + 20.0 * round as f64
}

/// Enqueue one planning window of arrivals for every active tenant
/// (round 0 also carries the 0..400s training prefix).
fn enqueue_window(fleet: &TenantFleet, round: u64) {
    let (lo, hi) = if round == 0 {
        (0.0, 400.0)
    } else {
        (round_now(round - 1), round_now(round))
    };
    for &index in &ACTIVE {
        let gap = 4.0 + index as f64;
        let first = (lo / gap).ceil() as usize;
        for t in (first..).map(|k| k as f64 * gap).take_while(|t| *t < hi) {
            assert!(fleet.enqueue(index, t).unwrap(), "queue overflow");
        }
    }
}

/// The scripted session both fleets run: active tenants get steady bus
/// traffic; the dark tenant `POKED` is touched directly at rounds 3 and
/// 8 — waking it virgin, letting it re-hibernate (and, with paging on,
/// leave memory), then waking it again from its page.
type RoundResults =
    Vec<Vec<Result<robustscaler::scaling::PlanningRound, robustscaler::online::OnlineError>>>;
type ResidencyLog = Vec<(u64, robustscaler::online::ResidencyEvent)>;

fn drive(fleet: &mut TenantFleet, rounds: u64) -> (RoundResults, ResidencyLog) {
    let mut results = Vec::new();
    let mut events = Vec::new();
    for round in 0..rounds {
        if round == 3 || round == 8 {
            assert!(
                fleet.tenant_mut(POKED).is_some(),
                "direct access must wake tenant {POKED}"
            );
        }
        enqueue_window(fleet, round);
        results.push(fleet.run_round_uniform(round_now(round), 0).unwrap());
        events.extend(fleet.take_residency_events());
    }
    (results, events)
}

/// Build the paging fleet: cold registration plus an on-disk page store.
fn paging_fleet(seed: u64, dir: &PathBuf) -> TenantFleet {
    let config = online_config();
    let mut fleet = TenantFleet::new_cold(&config, 0.0, TENANTS, seed, residency_config()).unwrap();
    fleet.attach_bus(bus_config()).unwrap();
    fleet.set_hibernation_dir(dir).unwrap();
    fleet
}

/// Build the reference fleet: everything resident, same residency
/// policy, no page store.
fn reference_fleet(seed: u64) -> TenantFleet {
    let config = online_config();
    let mut fleet = TenantFleet::new(&config, 0.0, TENANTS, seed).unwrap();
    fleet.enable_residency(residency_config()).unwrap();
    fleet.attach_bus(bus_config()).unwrap();
    fleet
}

/// The tentpole contract, deterministically: paging on ≡ paging off,
/// and the paging fleet demonstrably pages (out to disk and back in).
#[test]
fn paging_fleet_matches_resident_fleet_bit_for_bit() {
    let dir = scratch("equivalence");
    let mut paged = paging_fleet(7, &dir);
    let mut resident = reference_fleet(7);

    let (paged_rounds, paged_events) = drive(&mut paged, 11);
    let (resident_rounds, resident_events) = drive(&mut resident, 11);

    assert_eq!(paged_rounds, resident_rounds);
    assert_eq!(paged_events, resident_events);
    assert_eq!(paged.aggregate_stats(), resident.aggregate_stats());

    let stats = paged.residency_stats();
    // The poked tenant hibernated after its first wake and was paged to
    // disk; its second wake read the page back.
    assert!(stats.hibernated_total >= 1, "no hibernation: {stats:?}");
    assert!(stats.page_outs >= 1, "nothing paged out: {stats:?}");
    assert!(stats.page_ins >= 1, "nothing paged in: {stats:?}");
    assert_eq!(stats.page_out_failures + stats.page_in_failures, 0);
    // Wake/hibernate bookkeeping is paging-independent.
    let reference = resident.residency_stats();
    assert_eq!(stats.hibernated_total, reference.hibernated_total);
    assert_eq!(stats.woken_total, reference.woken_total);
    assert_eq!(stats.hot, reference.hot);
    // Dark tenants never materialized in the paging fleet.
    assert!(stats.paged >= TENANTS - ACTIVE.len() - 1, "{stats:?}");
    for round in &paged_rounds {
        for &index in &[3usize, 5] {
            assert!(
                matches!(
                    round[index],
                    Err(robustscaler::online::OnlineError::Hibernated { .. })
                ),
                "dark tenant {index} should stay hibernated"
            );
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Acceptance criterion: hibernate → page-out → wake is
    /// bit-equivalent to never leaving memory, for 1, 3 and 8 workers,
    /// across seeds.
    #[test]
    fn paging_is_transparent_for_any_worker_count(seed in 0u64..1_000) {
        let reference = {
            let mut fleet = reference_fleet(seed);
            fleet.set_workers(1);
            drive(&mut fleet, 10)
        };
        for workers in [1usize, 3, 8] {
            let dir = scratch("workers");
            let mut fleet = paging_fleet(seed, &dir);
            fleet.set_workers(workers);
            let got = drive(&mut fleet, 10);
            prop_assert_eq!(
                &got.0, &reference.0,
                "paging fleet diverged at {} workers", workers
            );
            prop_assert_eq!(
                &got.1, &reference.1,
                "residency transitions diverged at {} workers", workers
            );
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
}

/// Memory bounding: a large cold registration materializes only the
/// tenants that see traffic; everyone else stays paged and reports
/// [`Hibernated`](robustscaler::online::OnlineError::Hibernated).
#[test]
fn cold_registration_materializes_only_active_tenants() {
    let config = online_config();
    let registered = 5_000;
    let active = 8;
    let mut fleet =
        TenantFleet::new_cold(&config, 0.0, registered, 21, residency_config()).unwrap();
    fleet.attach_bus(bus_config()).unwrap();

    for round in 0..3u64 {
        for index in 0..active {
            let gap = 4.0 + index as f64;
            let (lo, hi) = if round == 0 {
                (0.0, 400.0)
            } else {
                (round_now(round - 1), round_now(round))
            };
            let first = (lo / gap).ceil() as usize;
            for t in (first..).map(|k| k as f64 * gap).take_while(|t| *t < hi) {
                assert!(fleet.enqueue(index, t).unwrap());
            }
        }
        let results = fleet.run_round_uniform(round_now(round), 0).unwrap();
        assert_eq!(results.len(), registered);
        for (index, result) in results.iter().enumerate().skip(active) {
            assert!(
                matches!(
                    result,
                    Err(robustscaler::online::OnlineError::Hibernated { .. })
                ),
                "tenant {index} should be dormant, got {result:?}"
            );
        }
    }

    let stats = fleet.residency_stats();
    assert_eq!(stats.paged, registered - active, "{stats:?}");
    assert_eq!(stats.hot, active, "{stats:?}");
    assert_eq!(stats.woken_total, active as u64, "{stats:?}");
}

/// A cold-started, paging session records its residency transitions
/// and replays strictly, bit-for-bit.
#[test]
fn recorded_hibernating_session_replays_strictly() {
    let dir = scratch("replay-pages");
    let trace = scratch("replay-trace").join("trace.jsonl");
    std::fs::create_dir_all(trace.parent().unwrap()).unwrap();

    let mut fleet = paging_fleet(13, &dir);
    fleet.set_tracing(true);
    let sink = robustscaler::online::FileSink::create(&trace).unwrap();
    let recorder = TraceRecorder::new(Box::new(sink), &fleet.trace_header(13)).unwrap();
    fleet.start_recording(recorder).unwrap();
    drive(&mut fleet, 11);
    let summary = fleet.finish_recording().unwrap().unwrap();
    assert!(summary.rounds >= 11);

    let text = std::fs::read_to_string(&trace).unwrap();
    assert!(
        text.contains("\"residency\""),
        "trace header must declare the residency policy"
    );
    assert!(
        text.contains("Hibernate") && text.contains("Wake"),
        "trace must record hibernate/wake transitions"
    );

    let report = replay_path(&trace, ReplayMode::Strict, &PolicyBands::default()).unwrap();
    assert!(report.divergences.is_empty(), "{:?}", report.divergences);
    assert!(report.rounds >= 11);

    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(trace.parent().unwrap());
}

/// Checkpointing a fleet with mixed residency (hot, resident-cold,
/// paged virgin, paged on-disk) restores to a bit-identical
/// continuation — and the checkpoint alone suffices: the restored
/// fleet needs no page directory to keep planning.
#[test]
fn mixed_residency_checkpoint_restores_bit_identically() {
    let pages = scratch("mixed-pages");
    let checkpoint = scratch("mixed-checkpoint");
    let mut live = paging_fleet(29, &pages);
    drive(&mut live, 9);
    live.checkpoint_sharded(&checkpoint, 2).unwrap();

    let continue_run = |fleet: &mut TenantFleet| {
        let mut rounds = Vec::new();
        for round in 9..12u64 {
            enqueue_window(fleet, round);
            rounds.push(fleet.run_round_uniform(round_now(round), 0).unwrap());
        }
        rounds
    };
    let live_rounds = continue_run(&mut live);

    for workers in [1usize, 3, 8] {
        let config = online_config();
        let (mut restored, notes) = TenantFleet::restore_with(
            &checkpoint,
            &config,
            RestoreOptions {
                hibernation_dir: Some(pages.clone()),
                ..RestoreOptions::default()
            },
        )
        .unwrap();
        assert!(notes.is_empty(), "{notes:?}");
        assert!(!restored.restored_unarmed());
        restored.set_workers(workers);
        let restored_rounds = continue_run(&mut restored);
        assert_eq!(
            live_rounds, restored_rounds,
            "restored fleet diverged at {workers} workers"
        );
    }

    let _ = std::fs::remove_dir_all(&pages);
    let _ = std::fs::remove_dir_all(&checkpoint);
}

/// The restore-wiring bugfix: a plain `restore` silently drops the
/// supervisor policy, fault plan and page store the session ran with —
/// now detectable via `restored_unarmed`, and fixed by `restore_with`.
#[test]
fn plain_restore_is_detectably_unarmed_and_restore_with_rearms() {
    let pages = scratch("rearm-pages");
    let checkpoint = scratch("rearm-checkpoint");
    let supervisor = SupervisorConfig {
        quarantine_after: 7,
        ..SupervisorConfig::default()
    };
    let faults = FaultPlan {
        seed: 99,
        plan_error: 0.25,
        target_tenant: Some(1),
        ..FaultPlan::default()
    };

    let mut live = paging_fleet(31, &pages);
    live.set_supervisor(supervisor);
    live.set_faults(faults);
    drive(&mut live, 5);
    live.checkpoint_sharded(&checkpoint, 2).unwrap();

    let config = online_config();
    // The un-rearmed path: wiring silently reset to defaults — but the
    // fleet now says so.
    let bare = TenantFleet::restore(&checkpoint, &config).unwrap();
    assert!(bare.restored_unarmed());
    assert_eq!(bare.supervisor(), SupervisorConfig::default());
    assert_eq!(bare.fault_plan(), None);
    assert_eq!(bare.hibernation_dir(), None);

    // The fixed path: everything the session ran with comes back.
    let (rearmed, _) = TenantFleet::restore_with(
        &checkpoint,
        &config,
        RestoreOptions {
            supervisor: Some(supervisor),
            faults: Some(faults),
            hibernation_dir: Some(pages.clone()),
            ..RestoreOptions::default()
        },
    )
    .unwrap();
    assert!(!rearmed.restored_unarmed());
    assert_eq!(rearmed.supervisor(), supervisor);
    assert_eq!(rearmed.fault_plan(), Some(faults));
    assert_eq!(rearmed.hibernation_dir(), Some(pages.as_path()));

    // Re-arming by hand also clears the flag.
    let mut manual = TenantFleet::restore(&checkpoint, &config).unwrap();
    manual.set_supervisor(supervisor);
    assert!(!manual.restored_unarmed());

    let _ = std::fs::remove_dir_all(&pages);
    let _ = std::fs::remove_dir_all(&checkpoint);
}
