//! Persistence suite: the durable-state contract of the snapshot/checkpoint
//! layer.
//!
//! The load-bearing property is **kill-and-restore equivalence**: state
//! snapshotted mid-run and restored in a "fresh process" must continue
//! bit-identically to state that never stopped — at the ring level, the
//! scaler level, and the sharded fleet level (for any worker count). On top
//! of that, the on-disk format must fail loudly: a truncated or bit-flipped
//! shard is detected by checksum and reported per shard, never silently
//! zeroing a tenant. Checkpoint fidelity rides on the vendored serde_json
//! emitting full-precision numbers, so the suite also pins bit-exact `f64`
//! and full-range `u64` JSON round-trips.

use proptest::prelude::*;
use robustscaler::core::{RobustScalerConfig, RobustScalerVariant};
use robustscaler::online::{
    BusConfig, CheckpointStore, OnlineConfig, OnlineError, OnlineScaler, ScalerSnapshot,
    TenantFleet,
};
use robustscaler::timeseries::{CountRing, RingSnapshot};
use std::path::PathBuf;

/// Fresh per-test temp directory (no tempfile crate in the offline build).
/// Collision-safe across processes (pid) and within one (monotonic counter),
/// so proptest cases and parallel test threads never share a directory.
fn temp_dir(tag: &str) -> PathBuf {
    static DIR_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let seq = DIR_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!(
        "robustscaler-persistence-{tag}-{}-{seq}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn online_config() -> OnlineConfig {
    let mut pipeline =
        RobustScalerConfig::for_variant(RobustScalerVariant::HittingProbability { target: 0.9 });
    pipeline.bucket_width = 10.0;
    pipeline.periodicity_aggregation = 2;
    pipeline.admm.max_iterations = 30;
    pipeline.monte_carlo_samples = 60;
    pipeline.planning_interval = 20.0;
    pipeline.mean_processing = 5.0;
    pipeline.forecast_horizon = 400.0;
    let mut config = OnlineConfig::new(pipeline);
    config.window_buckets = 128;
    config.min_training_buckets = 10;
    config
}

/// Full-range finite `f64`s, including subnormals, extremes and exact
/// integers — generated from raw bit patterns so the whole representable
/// space is covered, not just "nice" values.
fn finite_f64() -> impl Strategy<Value = f64> {
    (0u64..u64::MAX).prop_map(|bits| {
        let x = f64::from_bits(bits);
        if x.is_finite() {
            x
        } else {
            // NaN/inf bit patterns: recycle the mantissa into a finite value.
            f64::from_bits(bits & 0x000F_FFFF_FFFF_FFFF)
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// serde_json `to_string` → `from_str` is bit-exact for finite f64
    /// (checkpoint fidelity rides on this).
    #[test]
    fn json_f64_round_trip_is_bit_exact(xs in prop::collection::vec(finite_f64(), 1..50)) {
        let json = serde_json::to_string(&xs).unwrap();
        let back: Vec<f64> = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(xs.len(), back.len());
        for (a, b) in xs.iter().zip(&back) {
            prop_assert_eq!(a.to_bits(), b.to_bits(), "{} round-tripped as {}", a, b);
        }
    }

    /// Full-range u64 (RNG states, seeds) survive JSON exactly.
    #[test]
    fn json_u64_round_trip_is_exact(xs in prop::collection::vec(0u64..u64::MAX, 1..50)) {
        let json = serde_json::to_string(&xs).unwrap();
        let back: Vec<u64> = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(xs, back);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Ring level: snapshot → JSON → restore → continue ingesting is
    /// indistinguishable from the ring that never stopped, for arbitrary
    /// arrival sequences and an arbitrary split point.
    #[test]
    fn ring_snapshot_restore_continue_is_bit_identical(
        arrivals in prop::collection::vec(0.0_f64..2_000.0, 10..200),
        split in 0usize..200,
        bucket_width in 1.0_f64..30.0,
        capacity in 4usize..64,
    ) {
        let split = split.min(arrivals.len());
        let mut live = CountRing::new(0.0, bucket_width, capacity).unwrap();
        live.observe_batch(&arrivals[..split]);
        // Simulated process death: state exists only as JSON bytes.
        let json = serde_json::to_string(&live.snapshot()).unwrap();
        let snapshot: RingSnapshot = serde_json::from_str(&json).unwrap();
        let mut restored = snapshot.restore().unwrap();
        prop_assert_eq!(&live, &restored);
        for &t in &arrivals[split..] {
            prop_assert_eq!(live.observe(t), restored.observe(t));
        }
        prop_assert_eq!(&live, &restored);
        prop_assert_eq!(live.observed(), restored.observed());
        prop_assert_eq!(live.dropped(), restored.dropped());
        if !live.is_empty() {
            prop_assert_eq!(live.series().unwrap(), restored.series().unwrap());
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Scaler level: snapshot mid-serving → JSON → restore → continue
    /// (interleaved ingestion and planning) is bit-identical to the scaler
    /// that never stopped — model, RNG stream, drift/refit schedule and
    /// forecast cache all resume exactly.
    #[test]
    fn scaler_snapshot_restore_continue_is_bit_identical(
        seed in 0u64..u64::MAX,
        gap in 2.0_f64..8.0,
        pre_rounds in 0usize..3,
        post_rounds in 1usize..4,
    ) {
        let config = online_config();
        let mut live = OnlineScaler::with_seed(config, 0.0, seed).unwrap();
        let warm: Vec<f64> = (0..(400.0 / gap) as usize).map(|i| i as f64 * gap).collect();
        live.ingest_batch(&warm);
        for i in 0..pre_rounds {
            let _ = live.plan_round(400.0 + 20.0 * i as f64, i);
        }
        let json = serde_json::to_string(&live.snapshot()).unwrap();
        let snapshot: ScalerSnapshot = serde_json::from_str(&json).unwrap();
        let mut restored = OnlineScaler::restore(snapshot, config).unwrap();
        let resume_at = 400.0 + 20.0 * pre_rounds as f64;
        for i in 0..post_rounds {
            let now = resume_at + 20.0 * i as f64;
            // Keep traffic flowing so drift/refit paths stay exercised.
            let chunk: Vec<f64> = (0..8).map(|k| now - 20.0 + 2.5 * k as f64).collect();
            live.ingest_batch(&chunk);
            restored.ingest_batch(&chunk);
            let a = live.plan_round(now, i);
            let b = restored.plan_round(now, i);
            prop_assert_eq!(a, b);
        }
        prop_assert_eq!(live.stats(), restored.stats());
    }
}

/// Ingest per-tenant traffic with distinct rates (tenant `i` gets one
/// arrival every `3 + i` seconds).
fn ingest_fleet(fleet: &mut TenantFleet, duration: f64) {
    for index in 0..fleet.len() {
        let gap = 3.0 + index as f64;
        let n = (duration / gap) as usize;
        for k in 0..n {
            fleet.ingest(index, k as f64 * gap).unwrap();
        }
    }
}

/// Acceptance criterion: a `TenantFleet` checkpointed mid-run and restored
/// in a fresh process produces bit-identical `PlanningRound`s to the
/// uninterrupted fleet, for 1, 3 and 8 workers.
#[test]
fn fleet_kill_and_restore_is_bit_identical_for_any_worker_count() {
    let dir = temp_dir("fleet-equivalence");
    let config = online_config();
    let tenant_count = 7;

    // The uninterrupted fleet: ingest, run three rounds, keep going.
    let mut live = TenantFleet::new(&config, 0.0, tenant_count, 99).unwrap();
    ingest_fleet(&mut live, 400.0);
    for round in 0..3 {
        live.run_round_uniform(400.0 + 20.0 * round as f64, round)
            .unwrap();
    }
    // Mid-run checkpoint (3 tenants per shard → 3 shard files).
    let manifest = live.checkpoint_sharded(&dir, 3).unwrap();
    assert_eq!(manifest.tenant_count, tenant_count);
    assert_eq!(manifest.shards.len(), 3);

    // Continue the live fleet: more ingestion, three more rounds.
    let continue_run = |fleet: &mut TenantFleet| {
        for index in 0..fleet.len() {
            for k in 0..20 {
                fleet.ingest(index, 460.0 + k as f64 * 2.0).unwrap();
            }
        }
        (0..3)
            .map(|round| {
                fleet
                    .run_round_uniform(460.0 + 20.0 * round as f64, round + 1)
                    .unwrap()
            })
            .collect::<Vec<_>>()
    };
    let live_rounds = continue_run(&mut live);

    // "Fresh process": restore from disk only, at several worker counts.
    for workers in [1usize, 3, 8] {
        let mut restored = TenantFleet::restore(&dir, &config).unwrap();
        restored.set_workers(workers);
        assert_eq!(restored.len(), tenant_count);
        let restored_rounds = continue_run(&mut restored);
        assert_eq!(
            live_rounds, restored_rounds,
            "restored fleet diverged at {workers} workers"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Ingestion-runtime acceptance criterion: a fleet checkpointed
    /// **mid-burst** — arrivals enqueued on the bus but not yet drained —
    /// restores with its queues intact and replays bit-identically to the
    /// fleet that never stopped, for 1, 3 and 8 workers.
    #[test]
    fn restore_with_queued_arrivals_replays_bit_identically(
        base_seed in 0u64..1_000,
        burst_len in 1usize..25,
        burst_gap in 0.5_f64..4.0,
        post_rounds in 1usize..4,
    ) {
        let dir = temp_dir("fleet-mid-burst");
        let config = online_config();
        let tenant_count = 5;
        let mut live = TenantFleet::new(&config, 0.0, tenant_count, base_seed).unwrap();
        live.attach_bus(BusConfig {
            capacity_per_tenant: 2_048,
            tenants_per_group: 2,
            ..BusConfig::default()
        })
        .unwrap();
        // Warm traffic through the bus, one settled round.
        for index in 0..tenant_count {
            let gap = 3.0 + index as f64;
            for k in 0..(400.0 / gap) as usize {
                prop_assert!(live.enqueue(index, k as f64 * gap).unwrap());
            }
        }
        live.run_round_uniform(400.0, 0).unwrap();
        // The burst lands on the bus; the process "dies" before draining.
        for index in 0..tenant_count {
            for k in 0..burst_len {
                prop_assert!(live.enqueue(index, 401.0 + k as f64 * burst_gap).unwrap());
            }
        }
        let manifest = live.checkpoint_sharded(&dir, 2).unwrap();
        prop_assert!(manifest.bus.is_some());
        prop_assert_eq!(manifest.tenant_count, tenant_count);

        // Continue the live fleet: the next rounds drain the burst.
        let continue_run = |fleet: &mut TenantFleet| {
            (0..post_rounds)
                .map(|round| {
                    let now = 420.0 + 20.0 * round as f64;
                    for index in 0..fleet.len() {
                        fleet.enqueue(index, now - 10.0 + index as f64).unwrap();
                    }
                    fleet.run_round_uniform(now, round + 1).unwrap()
                })
                .collect::<Vec<_>>()
        };
        let live_rounds = continue_run(&mut live);

        // "Fresh process": restore from disk only, at several worker
        // counts — queues, back-pressure accounting and plans all match.
        for workers in [1usize, 3, 8] {
            let mut restored = TenantFleet::restore(&dir, &config).unwrap();
            restored.set_workers(workers);
            let restored_rounds = continue_run(&mut restored);
            prop_assert_eq!(
                &live_rounds,
                &restored_rounds,
                "mid-burst restore diverged at {} workers",
                workers
            );
            prop_assert_eq!(live.aggregate_stats(), restored.aggregate_stats());
            prop_assert_eq!(
                live.queue_stats().unwrap(),
                restored.queue_stats().unwrap()
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Incremental checkpoints must stay restore-equivalent: generations that
/// reuse clean shards load into exactly the same fleet as a full rewrite
/// would have produced.
#[test]
fn incremental_generations_restore_identically_to_full_rewrites() {
    let dir = temp_dir("fleet-incremental");
    let full_dir = temp_dir("fleet-incremental-full");
    let config = online_config();
    let mut fleet = TenantFleet::new(&config, 0.0, 6, 17).unwrap();
    fleet
        .attach_bus(BusConfig {
            capacity_per_tenant: 1_024,
            tenants_per_group: 2,
            ..BusConfig::default()
        })
        .unwrap();
    ingest_fleet(&mut fleet, 400.0);
    fleet.run_round_uniform(400.0, 0).unwrap();
    fleet.checkpoint_sharded(&dir, 2).unwrap();

    // Touch one tenant's scaler and another's queue; checkpoint again —
    // this generation mixes fresh and reused shards.
    fleet.ingest(1, 405.0).unwrap();
    fleet.enqueue(4, 406.0).unwrap();
    let incremental = fleet.checkpoint_sharded(&dir, 2).unwrap();
    assert!(
        incremental.shards.iter().any(|s| s.reused_from.is_some()),
        "expected at least one reused shard"
    );
    assert!(
        incremental.shards.iter().any(|s| s.reused_from.is_none()),
        "expected at least one rewritten shard"
    );
    // A clone checkpoints fully fresh (clones start dirty) — the reference.
    fleet.clone().checkpoint_sharded(&full_dir, 2).unwrap();

    let mut from_incremental = TenantFleet::restore(&dir, &config).unwrap();
    let mut from_full = TenantFleet::restore(&full_dir, &config).unwrap();
    assert_eq!(
        from_incremental.aggregate_stats(),
        from_full.aggregate_stats()
    );
    assert_eq!(
        from_incremental.queue_stats().unwrap(),
        from_full.queue_stats().unwrap()
    );
    for round in 1..3 {
        let now = 400.0 + 20.0 * round as f64;
        assert_eq!(
            from_incremental.run_round_uniform(now, round).unwrap(),
            from_full.run_round_uniform(now, round).unwrap()
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&full_dir);
}

/// Regression (formerly `tests/repro_reuse_bug.rs`): changing
/// `tenants_per_shard` between incremental checkpoints must never reuse a
/// shard from the old grouping. With 6 clean tenants checkpointed as
/// [2,2,2] and then as [4,2], new group 1 (tenants 4..6) has the same
/// tenant *count* as old shard 1 (tenants 2..4) — a count-only match would
/// link the wrong tenants' bytes into the new generation. Both the
/// store-level offset check and the fleet-level `tenants_per_shard` guard
/// must force fresh writes, and reuse must resume on the next checkpoint
/// under the new grouping.
#[test]
fn shard_size_change_between_checkpoints_never_reuses_misaligned_shards() {
    let dir = temp_dir("fleet-regroup");
    let config = online_config();
    let mut fleet = TenantFleet::new(&config, 0.0, 6, 21).unwrap();
    ingest_fleet(&mut fleet, 400.0);
    fleet.run_round_uniform(400.0, 0).unwrap();

    let first = fleet.checkpoint_sharded(&dir, 2).unwrap();
    assert_eq!(first.shards.len(), 3);
    assert!(first.shards.iter().all(|s| s.reused_from.is_none()));

    // Same grouping, nothing mutated: every shard is reused from gen 1.
    let second = fleet.checkpoint_sharded(&dir, 2).unwrap();
    assert!(second.shards.iter().all(|s| s.reused_from == Some(1)));

    // Regrouped [2,2,2] -> [4,2] with all tenants still clean: the
    // count-match trap. Every shard must be written fresh.
    let regrouped = fleet.checkpoint_sharded(&dir, 4).unwrap();
    assert_eq!(regrouped.shards.len(), 2);
    assert!(
        regrouped.shards.iter().all(|s| s.reused_from.is_none()),
        "regrouped checkpoint reused shards from a different grouping: {:?}",
        regrouped.shards
    );

    // The regrouped checkpoint restores the *right* tenants and the
    // restored fleet keeps planning identically to the live one.
    let mut restored = TenantFleet::restore(&dir, &config).unwrap();
    assert_eq!(restored.len(), 6);
    assert_eq!(restored.aggregate_stats(), fleet.aggregate_stats());
    assert_eq!(
        restored.run_round_uniform(420.0, 1).unwrap(),
        fleet.run_round_uniform(420.0, 1).unwrap()
    );

    // Under the *new* grouping, reuse works again (gen 3 wrote the bytes).
    // The round above dirtied every tenant, so checkpoint once to settle...
    let settle = fleet.checkpoint_sharded(&dir, 4).unwrap();
    assert!(settle.shards.iter().all(|s| s.reused_from.is_none()));
    // ...and the next clean checkpoint reuses both shards.
    let reused = fleet.checkpoint_sharded(&dir, 4).unwrap();
    assert!(reused.shards.iter().all(|s| s.reused_from == Some(4)));
    let _ = std::fs::remove_dir_all(&dir);
}

/// Acceptance criterion: a truncated shard is detected via checksum and
/// reported per shard — the error names the shard, the other shards stay
/// loadable, and no tenant is ever silently zeroed.
#[test]
fn corrupted_shard_fails_with_a_named_checksum_error_others_loadable() {
    let dir = temp_dir("fleet-corruption");
    let config = online_config();
    let mut fleet = TenantFleet::new(&config, 0.0, 6, 7).unwrap();
    ingest_fleet(&mut fleet, 400.0);
    fleet.run_round_uniform(400.0, 0).unwrap();
    let manifest = fleet.checkpoint_sharded(&dir, 2).unwrap();
    assert_eq!(manifest.shards.len(), 3);

    // Truncate the middle shard (simulates a crash or disk corruption).
    let victim = &manifest.shards[1];
    let victim_path = dir.join(&victim.file);
    let bytes = std::fs::read(&victim_path).unwrap();
    std::fs::write(&victim_path, &bytes[..bytes.len() - 17]).unwrap();

    // The whole-fleet restore fails, naming the corrupt shard.
    let err = TenantFleet::restore(&dir, &config).unwrap_err();
    match &err {
        OnlineError::Checkpoint {
            shard: Some(shard),
            message,
        } => {
            assert_eq!(shard, &victim.file);
            assert!(message.contains("checksum mismatch"), "{message}");
        }
        other => panic!("expected a shard-scoped checksum error, got {other:?}"),
    }

    // Per-shard loading: the other two shards load their tenants intact.
    let store = CheckpointStore::new(&dir);
    let (_, per_shard) = store.load_shards(2).unwrap();
    assert!(per_shard[0].is_ok());
    assert!(per_shard[1].is_err());
    assert!(per_shard[2].is_ok());
    let recovered: usize = per_shard
        .iter()
        .filter_map(|r| r.as_ref().ok())
        .map(Vec::len)
        .sum();
    assert_eq!(recovered, 4);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Regression: the old GC unconditionally deleted every generation older
/// than `current - 1`. After a shard corrupts *post-write*, later
/// generations hard-link the corrupt bytes — so every recent generation
/// is equally broken, and the unconditional sweep deleted exactly the
/// older generation scan-back recovery still needed. The
/// restorability-aware retention guard must refuse to sweep until some
/// kept generation verifies.
#[test]
fn retention_guard_never_sweeps_past_the_newest_restorable_generation() {
    let dir = temp_dir("retention-guard");
    let config = online_config();
    let mut fleet = TenantFleet::new(&config, 0.0, 6, 61).unwrap();
    ingest_fleet(&mut fleet, 400.0);
    fleet.run_round_uniform(400.0, 0).unwrap();
    let snapshots_v1: Vec<_> = {
        let store = CheckpointStore::new(&dir);
        let gen1 = fleet.checkpoint_sharded(&dir, 2).unwrap();
        assert_eq!(gen1.generation, 1);
        store.load(2).unwrap()
    };

    // Generation 2 writes fresh bytes (the round dirtied every tenant) —
    // its shard files share no inode with generation 1's.
    fleet.run_round_uniform(420.0, 1).unwrap();
    let gen2 = fleet.checkpoint_sharded(&dir, 2).unwrap();
    assert!(gen2.shards.iter().all(|s| s.reused_from.is_none()));

    // Bit rot strikes generation 2 after the write...
    std::fs::write(dir.join(&gen2.shards[1].file), b"{ torn").unwrap();

    // ...and the next two generations hard-link the corrupt bytes
    // (store-level writes with everything marked clean, so no fleet
    // self-heal kicks in between them).
    let store = CheckpointStore::new(&dir);
    let snapshots = store.load_shards(2).map(|_| ()).err();
    assert!(snapshots.is_none(), "scan-back itself must not fail here");
    let current = store.load(2).unwrap();
    let clean = vec![true; gen2.shards.len()];
    for expected_gen in [3u64, 4] {
        let manifest = store
            .write_with(
                &current,
                &robustscaler::online::WriteOptions {
                    tenants_per_shard: 2,
                    workers: 2,
                    clean_shards: Some(&clean),
                    ..Default::default()
                },
            )
            .unwrap();
        assert_eq!(manifest.generation, expected_gen);
        assert!(
            manifest.shards.iter().any(|s| s.reused_from.is_some()),
            "generations after the corruption must reuse shards to pin the bug"
        );
    }

    // The guard refused both sweeps: generation 1 — the only restorable
    // one — is still on disk, and the refusals were counted and noted.
    assert!(
        dir.join("gen-000001").exists(),
        "scan-back generation swept"
    );
    let io = store.io_stats();
    assert!(io.retention_verify_failures >= 1, "{io:?}");
    let notes = store.take_notes();
    assert!(
        notes.iter().any(|n| n.contains("retention guard")),
        "{notes:?}"
    );

    // Restore still succeeds — by falling back to generation 1 — with
    // generation 1's exact state. The old sweep made this impossible.
    let recovered = CheckpointStore::new(&dir).load(2).unwrap();
    assert_eq!(recovered.len(), snapshots_v1.len());
    let restored = TenantFleet::restore(&dir, &config).unwrap();
    assert_eq!(restored.len(), 6);

    // A fresh full write (all shards reserialized) is verified by
    // construction: the sweep resumes and prunes the corrupt history.
    let healed = store
        .write_with(
            &current,
            &robustscaler::online::WriteOptions {
                tenants_per_shard: 2,
                workers: 2,
                ..Default::default()
            },
        )
        .unwrap();
    assert_eq!(healed.generation, 5);
    assert!(healed.shards.iter().all(|s| s.reused_from.is_none()));
    assert!(!dir.join("gen-000001").exists(), "sweep did not resume");
    assert!(!dir.join("gen-000003").exists(), "sweep did not resume");
    assert!(TenantFleet::restore(&dir, &config).is_ok());
    let _ = std::fs::remove_dir_all(&dir);
}

/// The fleet-level self-heal half of the GC fix: when a checkpoint's
/// retention sweep is refused (nothing verifies), the fleet drops its
/// incremental baseline so the *next* checkpoint is a full rewrite —
/// restorable by construction — and reuse then resumes.
#[test]
fn fleet_self_heals_with_a_full_rewrite_after_a_blocked_sweep() {
    let dir = temp_dir("retention-self-heal");
    let config = online_config();
    let mut fleet = TenantFleet::new(&config, 0.0, 6, 67).unwrap();
    ingest_fleet(&mut fleet, 400.0);
    fleet.run_round_uniform(400.0, 0).unwrap();
    fleet.checkpoint_sharded(&dir, 2).unwrap();
    fleet.run_round_uniform(420.0, 1).unwrap();
    let gen2 = fleet.checkpoint_sharded(&dir, 2).unwrap();

    // Corrupt a fresh generation-2 shard, then checkpoint with every
    // tenant clean: generation 3 reuses the corrupt bytes and its sweep
    // is refused.
    std::fs::write(dir.join(&gen2.shards[0].file), b"{ torn").unwrap();
    let gen3 = fleet.checkpoint_sharded(&dir, 2).unwrap();
    assert!(gen3.shards.iter().all(|s| s.reused_from.is_some()));
    assert!(fleet.checkpoint_io_stats().retention_verify_failures >= 1);
    assert!(
        dir.join("gen-000001").exists(),
        "scan-back generation swept"
    );

    // Self-heal: the next checkpoint rewrites everything even though no
    // tenant was touched, and the sweep resumes behind it.
    let gen4 = fleet.checkpoint_sharded(&dir, 2).unwrap();
    assert!(
        gen4.shards.iter().all(|s| s.reused_from.is_none()),
        "self-heal checkpoint must rewrite every shard: {:?}",
        gen4.shards
    );
    assert!(!dir.join("gen-000001").exists(), "sweep did not resume");

    // The healed directory restores the live state bit-identically.
    let mut restored = TenantFleet::restore(&dir, &config).unwrap();
    assert_eq!(restored.aggregate_stats(), fleet.aggregate_stats());
    assert_eq!(
        restored.run_round_uniform(440.0, 2).unwrap(),
        fleet.run_round_uniform(440.0, 2).unwrap()
    );
    let _ = std::fs::remove_dir_all(&dir);
}
