//! Tests of the QoS guarantees (paper Propositions 1 and 2).
//!
//! When the arrival process really is an NHPP with known intensity and the
//! HP-constrained planner is used, the hitting probability of each query is
//! exactly `1 − α` (Proposition 1), and its degradation under an intensity
//! estimation error of relative size ε is at most linear in ε
//! (Proposition 2). These tests bypass the trainer and hand the policy the
//! exact (or deliberately perturbed) intensity, isolating the guarantee from
//! estimation error.

use rand::rngs::StdRng;
use rand::SeedableRng;
use robustscaler::core::pipeline::TrainedModel;
use robustscaler::core::{
    evaluate_policy, RobustScalerConfig, RobustScalerPolicy, RobustScalerVariant,
};
use robustscaler::nhpp::{sample_arrivals, NhppModel, PiecewiseConstantIntensity};
use robustscaler::simulator::{PendingTimeDistribution, Query, SimulationConfig, Trace};
use robustscaler::timeseries::TimeSeries;

const HOUR: f64 = 3_600.0;

/// Build a policy whose "trained" model is exactly the given constant rate.
fn oracle_policy(
    rate: f64,
    horizon: f64,
    target_hp: f64,
    monte_carlo_samples: usize,
) -> RobustScalerPolicy {
    let bucket = 60.0;
    let buckets = (horizon / bucket).ceil() as usize;
    let log_rates = vec![rate.ln(); buckets];
    let model = NhppModel::from_log_rates(0.0, bucket, log_rates, None).unwrap();
    let counts = TimeSeries::from_values(0.0, bucket, vec![rate * bucket; buckets]).unwrap();
    let trained = TrainedModel {
        model,
        periodicity: None,
        counts,
    };
    let mut config = RobustScalerConfig::for_variant(RobustScalerVariant::HittingProbability {
        target: target_hp,
    });
    config.mean_processing = 20.0;
    config.monte_carlo_samples = monte_carlo_samples;
    config.planning_interval = 15.0;
    config.pending = robustscaler::scaling::PendingTimeModel::Deterministic(13.0);
    config.seed = 99;
    RobustScalerPolicy::new(config, trained).unwrap()
}

/// Sample a Poisson(rate) trace over the horizon.
fn poisson_trace(rate: f64, horizon: f64, seed: u64) -> Trace {
    let intensity = PiecewiseConstantIntensity::new(0.0, horizon, vec![rate]).unwrap();
    let mut rng = StdRng::seed_from_u64(seed);
    let arrivals = sample_arrivals(&intensity, 0.0, horizon, &mut rng);
    Trace::new(
        "poisson",
        arrivals
            .into_iter()
            .map(|arrival| Query {
                arrival,
                processing: 20.0,
            })
            .collect(),
    )
    .unwrap()
}

fn sim_config(seed: u64) -> SimulationConfig {
    SimulationConfig {
        pending: PendingTimeDistribution::Deterministic(13.0),
        seed,
        recent_history_window: 600.0,
    }
}

#[test]
fn proposition1_known_intensity_attains_the_nominal_hitting_probability() {
    // Constant 0.3 QPS over 8 hours ≈ 8600 queries expected... (0.3*28800 =
    // 8640). Target HP 0.85.
    let rate = 0.3;
    let horizon = 8.0 * HOUR;
    let trace = poisson_trace(rate, horizon, 11);
    let mut policy = oracle_policy(rate, horizon, 0.85, 400);
    let (result, _) = evaluate_policy(&trace, &mut policy, sim_config(12)).unwrap();
    // Proposition 1: the hitting probability equals 1 − α = 0.85 exactly in
    // expectation; the empirical rate over thousands of arrivals should land
    // within a few percentage points.
    assert!(
        (result.hit_rate - 0.85).abs() < 0.06,
        "empirical hit rate {} should be close to the 0.85 target",
        result.hit_rate
    );
}

#[test]
fn proposition1_holds_across_different_targets() {
    let rate = 0.5;
    let horizon = 6.0 * HOUR;
    let trace = poisson_trace(rate, horizon, 21);
    for &target in &[0.6, 0.9] {
        let mut policy = oracle_policy(rate, horizon, target, 400);
        let (result, _) = evaluate_policy(&trace, &mut policy, sim_config(22)).unwrap();
        assert!(
            (result.hit_rate - target).abs() < 0.08,
            "target {target}: empirical {}",
            result.hit_rate
        );
    }
}

#[test]
fn proposition2_small_intensity_errors_cause_small_hp_degradation() {
    let rate = 0.4;
    let horizon = 6.0 * HOUR;
    let trace = poisson_trace(rate, horizon, 31);
    let target = 0.9;

    let mut exact_policy = oracle_policy(rate, horizon, target, 400);
    let (exact, _) = evaluate_policy(&trace, &mut exact_policy, sim_config(32)).unwrap();

    // 10% over-estimated intensity: the planner believes queries arrive a
    // little sooner than they do, so it creates slightly earlier — the HP can
    // only improve, and by a bounded amount (Proposition 2's linear bound).
    let mut over_policy = oracle_policy(rate * 1.1, horizon, target, 400);
    let (over, _) = evaluate_policy(&trace, &mut over_policy, sim_config(32)).unwrap();

    // 10% under-estimated intensity: HP degrades, but stays within a modest
    // band of the nominal level rather than collapsing.
    let mut under_policy = oracle_policy(rate * 0.9, horizon, target, 400);
    let (under, _) = evaluate_policy(&trace, &mut under_policy, sim_config(32)).unwrap();

    assert!(
        over.hit_rate >= exact.hit_rate - 0.03,
        "over-estimation should not hurt: {} vs {}",
        over.hit_rate,
        exact.hit_rate
    );
    assert!(
        (under.hit_rate - target).abs() < 0.15,
        "10% under-estimation should cause bounded degradation, got {}",
        under.hit_rate
    );
    assert!(under.hit_rate <= exact.hit_rate + 0.03);
}

#[test]
fn hitting_ratio_variance_shrinks_with_more_queries() {
    // Proposition 1's variance bound implies the empirical hitting ratio over
    // N queries concentrates as N grows. Compare the dispersion of per-window
    // hit rates for windows of 50 vs 400 queries.
    let rate = 0.5;
    let horizon = 8.0 * HOUR;
    let trace = poisson_trace(rate, horizon, 41);
    let mut policy = oracle_policy(rate, horizon, 0.8, 400);
    let (_, metrics) = evaluate_policy(&trace, &mut policy, sim_config(42)).unwrap();
    let small_window = metrics.windowed_hit_variance(50).unwrap();
    let large_window = metrics.windowed_hit_variance(400).unwrap();
    assert!(
        large_window < small_window,
        "variance with 400-query windows ({large_window}) should be below the 50-query one ({small_window})"
    );
}
