//! Replay suite: the recorded-trace contract that gates CI.
//!
//! A session recorded to a JSONL trace must **replay**: re-executing the
//! session from the trace header regenerates every plan and refit
//! bit-for-bit (strict mode), and any injected divergence is caught with a
//! pointed diff naming the round, tenant and field. The golden corpus
//! under `tests/traces/` pins four scenario shapes (diurnal,
//! flash-crowd, drift-triggering, kill-and-restore-mid-burst); CI replays
//! them strictly, so any behavioural change to ingestion, training or
//! planning shows up as a divergence, not a silent drift. Regenerate the
//! goldens intentionally with `REGEN_GOLDEN_TRACES=1 cargo test --test
//! replay`. On top of the goldens, the format itself must fail loudly:
//! truncated, corrupted, version-unknown or self-inconsistent traces are
//! rejected with the offending line number.

use proptest::prelude::*;
use robustscaler::core::{RobustScalerConfig, RobustScalerVariant};
use robustscaler::online::{
    replay_trace, BusConfig, MemorySink, OnlineConfig, OnlineError, PolicyBands, RecordedTrace,
    RefitTrigger, ReplayMode, TenantFleet, TraceRecord, TraceRecorder, TRACE_FORMAT_VERSION,
};
use std::path::PathBuf;

/// Fresh per-test temp directory (no tempfile crate in the offline build),
/// collision-safe across processes and test threads.
fn temp_dir(tag: &str) -> PathBuf {
    static DIR_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let seq = DIR_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!(
        "robustscaler-replay-{tag}-{}-{seq}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The committed golden corpus lives next to this test file.
fn traces_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("traces")
}

fn base_config() -> OnlineConfig {
    let mut pipeline =
        RobustScalerConfig::for_variant(RobustScalerVariant::HittingProbability { target: 0.9 });
    pipeline.bucket_width = 10.0;
    pipeline.periodicity_aggregation = 2;
    pipeline.admm.max_iterations = 30;
    pipeline.monte_carlo_samples = 60;
    pipeline.planning_interval = 20.0;
    pipeline.mean_processing = 5.0;
    pipeline.forecast_horizon = 400.0;
    let mut config = OnlineConfig::new(pipeline);
    config.window_buckets = 256;
    config.min_training_buckets = 10;
    config
}

fn bus_config() -> BusConfig {
    BusConfig {
        capacity_per_tenant: 8_192,
        tenants_per_group: 2,
        ..BusConfig::default()
    }
}

/// Enqueue round `round`'s arrival window for every tenant: round 0 covers
/// the warm stretch `[0, 400)`, later rounds the 20 s window ending at the
/// round boundary, with arrivals spaced `gap_for(tenant, round)` apart.
fn enqueue_window(fleet: &TenantFleet, round: usize, gap_for: &dyn Fn(usize, usize) -> f64) {
    for index in 0..fleet.len() {
        let gap = gap_for(index, round);
        let (lo, hi) = if round == 0 {
            (0.0, 400.0)
        } else {
            (
                400.0 + 20.0 * (round as f64 - 1.0),
                400.0 + 20.0 * round as f64,
            )
        };
        let mut t = lo + 0.5 * gap;
        while t < hi {
            assert!(fleet.enqueue(index, t).unwrap(), "queue has room");
            t += gap;
        }
    }
}

/// Record a fresh 3-tenant fleet session: `rounds` bus-fed rounds with the
/// given per-(tenant, round) arrival gaps, returned as the trace text.
fn record_fleet(
    config: &OnlineConfig,
    seed: u64,
    rounds: usize,
    gap_for: &dyn Fn(usize, usize) -> f64,
) -> String {
    let mut fleet = TenantFleet::new(config, 0.0, 3, seed).unwrap();
    fleet.attach_bus(bus_config()).unwrap();
    let sink = MemorySink::new();
    let lines = sink.lines();
    let recorder = TraceRecorder::new(Box::new(sink), &fleet.trace_header(seed)).unwrap();
    fleet.start_recording(recorder).unwrap();
    for round in 0..rounds {
        enqueue_window(&fleet, round, gap_for);
        fleet
            .run_round_uniform(400.0 + 20.0 * round as f64, round)
            .unwrap();
    }
    fleet.finish_recording().unwrap().unwrap();
    let lines = lines.lock().unwrap();
    lines.join("\n")
}

/// Record a session that is killed mid-burst: two recorded rounds, a burst
/// enqueued but not yet drained, recorder detached + fleet checkpointed,
/// then a *restored* fleet re-attaches the same recorder and serves two
/// more rounds — one continuous trace spanning the process boundary.
fn record_kill_restore(config: &OnlineConfig, seed: u64) -> String {
    let dir = temp_dir("kill-restore-golden");
    let gap_for = |tenant: usize, _round: usize| 4.0 + tenant as f64;
    let mut fleet = TenantFleet::new(config, 0.0, 3, seed).unwrap();
    fleet.attach_bus(bus_config()).unwrap();
    let sink = MemorySink::new();
    let lines = sink.lines();
    let recorder = TraceRecorder::new(Box::new(sink), &fleet.trace_header(seed)).unwrap();
    fleet.start_recording(recorder).unwrap();
    for round in 0..2 {
        enqueue_window(&fleet, round, &gap_for);
        fleet
            .run_round_uniform(400.0 + 20.0 * round as f64, round)
            .unwrap();
    }
    // The burst lands on the bus; the process "dies" before draining it.
    for index in 0..fleet.len() {
        for k in 0..10 {
            assert!(fleet.enqueue(index, 441.0 + k as f64).unwrap());
        }
    }
    let recorder = fleet.take_recorder().unwrap().expect("recording was on");
    fleet.checkpoint_sharded(&dir, 2).unwrap();
    drop(fleet);

    let mut restored = TenantFleet::restore(&dir, config).unwrap();
    restored.start_recording(recorder).unwrap();
    for round in 2..4 {
        enqueue_window(&restored, round, &gap_for);
        restored
            .run_round_uniform(400.0 + 20.0 * round as f64, round)
            .unwrap();
    }
    restored.finish_recording().unwrap().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
    let lines = lines.lock().unwrap();
    lines.join("\n")
}

/// Regenerate one golden scenario's trace text.
fn record_scenario(name: &str) -> String {
    let mut config = base_config();
    match name {
        // Mild sinusoidal daily profile: per-round gaps swing around each
        // tenant's base rate.
        "diurnal" => record_fleet(&config, 101, 6, &|tenant, round| {
            3.0 + tenant as f64 + 2.0 * (round as f64 * std::f64::consts::TAU / 6.0).sin()
        }),
        // Quiet traffic with a 12x surge in round 3's window.
        "flash_crowd" => record_fleet(&config, 202, 6, &|tenant, round| {
            if round == 3 {
                0.4
            } else {
                5.0 + tenant as f64
            }
        }),
        // Scheduled refits disabled: only the drift detector can refit.
        // Quiet training then a sustained surge must trip it.
        "drift" => {
            config.refit_interval = 1e9;
            config.drift_window = 200.0;
            record_fleet(&config, 303, 8, &|_, round| {
                if round >= 3 {
                    0.5
                } else {
                    8.0
                }
            })
        }
        "kill_restore" => record_kill_restore(&config, 404),
        other => panic!("unknown golden scenario `{other}`"),
    }
}

/// Load a golden (regenerating it first under `REGEN_GOLDEN_TRACES=1`),
/// replay it strictly, and return the parsed trace for extra assertions.
fn replay_golden(name: &str) -> RecordedTrace {
    let path = traces_dir().join(format!("{name}.jsonl"));
    if std::env::var("REGEN_GOLDEN_TRACES").as_deref() == Ok("1") {
        std::fs::create_dir_all(traces_dir()).unwrap();
        let mut text = record_scenario(name);
        text.push('\n');
        std::fs::write(&path, text).unwrap();
    }
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "golden trace {} unreadable ({e}); regenerate with \
             REGEN_GOLDEN_TRACES=1 cargo test --test replay",
            path.display()
        )
    });
    let trace = RecordedTrace::parse(&text).unwrap();
    // Goldens may lag the current format (they are regenerated only when
    // their recorded *behavior* changes): replaying an older version IS
    // the backward-compatibility contract. v2 added optional chaos header
    // fields, so v1 goldens stay byte-frozen and replay as fault-free.
    assert!(
        trace.header.version <= TRACE_FORMAT_VERSION,
        "golden `{name}` was recorded by a future format (v{})",
        trace.header.version
    );
    let report = replay_trace(&trace, ReplayMode::Strict, &PolicyBands::default())
        .unwrap_or_else(|e| panic!("golden `{name}` diverged: {e}"));
    assert!(report.passed(), "golden `{name}`: {:?}", report.divergences);
    assert!(report.rounds >= 2, "golden `{name}` is too short");
    assert!(report.plans_checked > 0);
    trace
}

#[test]
fn golden_diurnal_replays_strictly() {
    replay_golden("diurnal");
}

#[test]
fn golden_flash_crowd_replays_strictly() {
    replay_golden("flash_crowd");
}

#[test]
fn golden_drift_replays_strictly_and_contains_a_drift_refit() {
    let trace = replay_golden("drift");
    assert!(
        trace.records.iter().any(|(_, record)| matches!(
            record,
            TraceRecord::Refit(refit) if refit.trigger == RefitTrigger::Drift
        )),
        "the drift scenario must record at least one drift-triggered refit"
    );
}

#[test]
fn golden_kill_restore_replays_strictly() {
    let trace = replay_golden("kill_restore");
    // The trace spans the process boundary: rounds recorded on both sides.
    let rounds = trace
        .records
        .iter()
        .filter(|(_, r)| matches!(r, TraceRecord::Round { .. }))
        .count();
    assert_eq!(rounds, 4);
}

/// Acceptance criterion: a single mutated plan field is caught, and the
/// diff names the round, the tenant and the field.
#[test]
fn injected_plan_mutation_is_caught_with_a_pointed_diff() {
    let text = record_fleet(&base_config(), 55, 3, &|tenant, _| 4.0 + tenant as f64);
    let mut trace = RecordedTrace::parse(&text).unwrap();
    let mut mutated = None;
    for (_, record) in &mut trace.records {
        if let TraceRecord::Plan(plan) = record {
            if plan.error.is_none() {
                plan.expected_arrivals_in_window += 1.0;
                mutated = Some((plan.round, plan.tenant));
                break;
            }
        }
    }
    let (round, tenant) = mutated.expect("the session produced at least one successful plan");
    let err = replay_trace(&trace, ReplayMode::Strict, &PolicyBands::default()).unwrap_err();
    match &err {
        OnlineError::ReplayDivergence {
            round: got_round,
            tenant: got_tenant,
            field,
            ..
        } => {
            assert_eq!(*got_round, round);
            assert_eq!(*got_tenant, tenant);
            assert_eq!(field, "expected_arrivals_in_window");
        }
        other => panic!("expected a replay divergence, got {other:?}"),
    }
    // The rendered diff carries the same coordinates.
    let message = err.to_string();
    assert!(message.contains(&format!("round {round}")), "{message}");
    assert!(message.contains(&format!("tenant {tenant}")), "{message}");
    assert!(message.contains("expected_arrivals_in_window"), "{message}");
}

#[test]
fn truncated_trailing_record_fails_naming_the_line() {
    let text = record_fleet(&base_config(), 56, 2, &|tenant, _| 4.0 + tenant as f64);
    let lines: Vec<&str> = text.lines().collect();
    let last = lines.len();

    // Half a final record (a crash mid-write): the parser points at it.
    let mut torn = lines[..last - 1].join("\n");
    torn.push('\n');
    torn.push_str(&lines[last - 1][..lines[last - 1].len() / 2]);
    let err = RecordedTrace::parse(&torn).unwrap_err();
    assert!(err.to_string().contains(&format!("line {last}")), "{err}");

    // The final QoS record missing entirely: parseable, but replay reports
    // the truncation instead of silently passing a partial session.
    let trace = RecordedTrace::parse(&lines[..last - 1].join("\n")).unwrap();
    let err = replay_trace(&trace, ReplayMode::Strict, &PolicyBands::default()).unwrap_err();
    assert!(err.to_string().contains("QoS"), "{err}");
}

#[test]
fn unknown_future_version_fails_naming_line_one() {
    let text = record_fleet(&base_config(), 57, 2, &|tenant, _| 4.0 + tenant as f64);
    let current = format!("\"version\":{TRACE_FORMAT_VERSION}");
    let bumped = text.replacen(&current, "\"version\":99", 1);
    assert_ne!(text, bumped, "header serialization changed shape");
    let err = RecordedTrace::parse(&bumped).unwrap_err();
    let message = err.to_string();
    assert!(message.contains("version 99"), "{message}");
    assert!(message.contains("line 1"), "{message}");
}

#[test]
fn corrupted_event_line_fails_naming_the_line() {
    let text = record_fleet(&base_config(), 58, 2, &|tenant, _| 4.0 + tenant as f64);
    let mut lines: Vec<String> = text.lines().map(str::to_string).collect();
    assert!(lines.len() > 5);
    lines[4] = "{this is not a record".to_string();
    let err = RecordedTrace::parse(&lines.join("\n")).unwrap_err();
    assert!(err.to_string().contains("line 5"), "{err}");
}

#[test]
fn header_inconsistent_with_its_own_session_fails_naming_line_one() {
    let text = record_fleet(&base_config(), 59, 2, &|tenant, _| 4.0 + tenant as f64);
    // A single-scaler session claiming 3 tenants is self-contradictory.
    let warped = text.replacen("\"session\":\"Fleet\"", "\"session\":\"Single\"", 1);
    assert_ne!(text, warped, "header serialization changed shape");
    let err = RecordedTrace::parse(&warped).unwrap_err();
    let message = err.to_string();
    assert!(message.contains("line 1"), "{message}");
    assert!(message.to_lowercase().contains("single"), "{message}");
}

/// Format-compatibility pin: the committed v1 fixture (frozen bytes, never
/// regenerated) must stay readable by every future reader of version 1.
#[test]
fn v1_fixture_still_parses() {
    let path = traces_dir().join("v1_fixture.jsonl");
    let trace = RecordedTrace::load(&path).unwrap_or_else(|e| {
        panic!("v1 fixture {} unreadable: {e}", path.display());
    });
    assert_eq!(trace.header.version, 1);
    assert!(trace
        .records
        .iter()
        .any(|(_, r)| matches!(r, TraceRecord::Plan(_))));
    assert!(matches!(
        trace.records.last().map(|(_, r)| r),
        Some(TraceRecord::Qos(_))
    ));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Record → replay is bit-equivalent on arbitrary arrival streams, and
    /// the recorded bytes are identical for 1, 3 and 8 workers.
    #[test]
    fn record_then_replay_round_trips_for_any_stream_and_worker_count(
        base_seed in 0u64..1_000,
        tenant_count in 2usize..5,
        gaps in prop::collection::vec(3.0f64..12.0, 2..5),
        rounds in 2usize..5,
    ) {
        let config = base_config();
        let texts: Vec<String> = [1usize, 3, 8]
            .iter()
            .map(|&workers| {
                let mut fleet =
                    TenantFleet::new(&config, 0.0, tenant_count, base_seed).unwrap();
                fleet.attach_bus(bus_config()).unwrap();
                fleet.set_workers(workers);
                let sink = MemorySink::new();
                let lines = sink.lines();
                let recorder =
                    TraceRecorder::new(Box::new(sink), &fleet.trace_header(base_seed))
                        .unwrap();
                fleet.start_recording(recorder).unwrap();
                for round in 0..rounds {
                    enqueue_window(&fleet, round, &|tenant, _| {
                        gaps[tenant % gaps.len()]
                    });
                    fleet
                        .run_round_uniform(400.0 + 20.0 * round as f64, round)
                        .unwrap();
                }
                fleet.finish_recording().unwrap().unwrap();
                let lines = lines.lock().unwrap();
                lines.join("\n")
            })
            .collect();
        prop_assert_eq!(&texts[0], &texts[1], "1 vs 3 workers");
        prop_assert_eq!(&texts[0], &texts[2], "1 vs 8 workers");

        let trace = RecordedTrace::parse(&texts[0]).unwrap();
        let report =
            replay_trace(&trace, ReplayMode::Strict, &PolicyBands::default()).unwrap();
        prop_assert!(report.passed(), "{:?}", report.divergences);
        prop_assert_eq!(report.rounds, rounds as u64);
    }
}
