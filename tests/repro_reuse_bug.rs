use robustscaler_online::fleet::TenantFleet;
use robustscaler_online::scaler::OnlineConfig;

fn fleet_config() -> OnlineConfig {
    OnlineConfig::default()
}

#[test]
fn shard_size_change_reuse() {
    let dir = std::env::temp_dir().join(format!("repro-reuse-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let config = fleet_config();
    let mut fleet = TenantFleet::new(&config, 0.0, 6, 21).unwrap();
    for index in 0..6 {
        for k in 0..50 {
            fleet.ingest(index, k as f64 * (4.0 + index as f64)).unwrap();
        }
    }
    fleet.run_round_uniform(400.0, 0).unwrap();
    // First checkpoint: shard size 2 -> shards of [2,2,2] tenants.
    fleet.checkpoint_sharded(&dir, 2).unwrap();
    // Second checkpoint, nothing dirty, shard size 4 -> groups [4,2].
    let m = fleet.checkpoint_sharded(&dir, 4).unwrap();
    for (i, s) in m.shards.iter().enumerate() {
        eprintln!("shard {i}: tenants={} reused_from={:?}", s.tenants, s.reused_from);
    }
    let restored = TenantFleet::restore(&dir, &config);
    eprintln!("restore result: {:?}", restored.as_ref().err());
    assert!(restored.is_ok(), "restore failed: checkpoint corrupted");
    let _ = std::fs::remove_dir_all(&dir);
}
