//! End-to-end integration tests: train the full pipeline on synthetic
//! periodic traffic and verify that the three RobustScaler variants deliver
//! the qualitative behaviour the paper reports (high hit rates for HP, low
//! response times for RT, bounded budgets for cost, all at a cost well below
//! a naively large warm pool).

use robustscaler::core::{
    evaluate_policy, RobustScalerConfig, RobustScalerPipeline, RobustScalerVariant,
};
use robustscaler::simulator::{BackupPool, PendingTimeDistribution, SimulationConfig, Trace};
use robustscaler::traces::{google_like, ProcessingTimeModel, TraceConfig};

const HOUR: f64 = 3_600.0;

fn workload() -> Trace {
    // Four days of training history (so the daily period is detected and the
    // forecast is phase-aligned) plus a 12-hour test window.
    google_like(&TraceConfig {
        duration: 108.0 * HOUR,
        traffic_scale: 0.5,
        processing: ProcessingTimeModel::Exponential { mean: 20.0 },
        seed: 101,
    })
}

fn fast_config(variant: RobustScalerVariant) -> RobustScalerConfig {
    let mut config = RobustScalerConfig::for_variant(variant);
    config.mean_processing = 20.0;
    config.monte_carlo_samples = 200;
    config.planning_interval = 20.0;
    config.admm.max_iterations = 80;
    config
}

fn sim_config(seed: u64) -> SimulationConfig {
    SimulationConfig {
        pending: PendingTimeDistribution::Deterministic(13.0),
        seed,
        recent_history_window: 600.0,
    }
}

#[test]
fn hp_variant_achieves_its_target_hit_rate_at_reasonable_cost() {
    let trace = workload();
    let (train, test) = trace.split_at(trace.start() + 96.0 * HOUR).unwrap();
    let pipeline = fast_config(RobustScalerVariant::HittingProbability { target: 0.9 });
    let mut policy = RobustScalerPipeline::new(pipeline)
        .unwrap()
        .build_policy(&train)
        .unwrap();
    let (result, _) = evaluate_policy(&test, &mut policy, sim_config(1)).unwrap();

    assert!(
        result.hit_rate > 0.78,
        "hit rate {} should be near the 0.9 target",
        result.hit_rate
    );
    assert!(
        result.hit_rate < 1.0,
        "a hit rate of exactly 1.0 suggests gross over-provisioning"
    );
    // The proactive policy must be far cheaper than a pool large enough to
    // reach a comparable hit rate on this workload.
    let mut big_pool = BackupPool::new(12);
    let (pool_result, _) = evaluate_policy(&test, &mut big_pool, sim_config(1)).unwrap();
    assert!(pool_result.hit_rate > 0.9);
    assert!(
        result.relative_cost < pool_result.relative_cost,
        "RobustScaler-HP relative cost {} should undercut the big pool's {}",
        result.relative_cost,
        pool_result.relative_cost
    );
}

#[test]
fn rt_variant_brings_response_time_close_to_the_processing_floor() {
    let trace = workload();
    let (train, test) = trace.split_at(trace.start() + 96.0 * HOUR).unwrap();
    let config = fast_config(RobustScalerVariant::ResponseTime { target: 22.0 });
    let mut policy = RobustScalerPipeline::new(config)
        .unwrap()
        .build_policy(&train)
        .unwrap();
    let (result, metrics) = evaluate_policy(&test, &mut policy, sim_config(2)).unwrap();

    // The reactive response time on this workload is processing + pending
    // ≈ 33 s; the RT-constrained policy should stay clearly below that and
    // in the vicinity of its 22 s target.
    assert!(
        result.rt_avg < 27.0,
        "rt_avg {} should be well below the reactive level",
        result.rt_avg
    );
    assert!(
        metrics.waiting_avg() < 8.0,
        "waiting {}",
        metrics.waiting_avg()
    );
}

#[test]
fn cost_variant_respects_a_tight_budget() {
    let trace = workload();
    let (train, test) = trace.split_at(trace.start() + 96.0 * HOUR).unwrap();
    // Budget of 35 s per instance: pending (13) + processing (20) + 2 s idle.
    let config = fast_config(RobustScalerVariant::CostBudget { budget: 35.0 });
    let mut policy = RobustScalerPipeline::new(config)
        .unwrap()
        .build_policy(&train)
        .unwrap();
    let (result, metrics) = evaluate_policy(&test, &mut policy, sim_config(3)).unwrap();

    let cost_per_query = metrics.cost_per_query();
    assert!(
        cost_per_query < 40.0,
        "cost per query {cost_per_query} should respect the ~35 s budget"
    );
    // The cost variant still improves on purely reactive QoS.
    assert!(result.hit_rate > 0.05);
    assert!(result.relative_cost < 1.5);
}

#[test]
fn variants_order_as_expected_on_the_qos_cost_spectrum() {
    let trace = workload();
    let (train, test) = trace.split_at(trace.start() + 96.0 * HOUR).unwrap();
    let strict = fast_config(RobustScalerVariant::HittingProbability { target: 0.95 });
    let loose = fast_config(RobustScalerVariant::HittingProbability { target: 0.5 });
    let mut strict_policy = RobustScalerPipeline::new(strict)
        .unwrap()
        .build_policy(&train)
        .unwrap();
    let mut loose_policy = RobustScalerPipeline::new(loose)
        .unwrap()
        .build_policy(&train)
        .unwrap();
    let (strict_result, _) = evaluate_policy(&test, &mut strict_policy, sim_config(4)).unwrap();
    let (loose_result, _) = evaluate_policy(&test, &mut loose_policy, sim_config(4)).unwrap();
    // A stricter HP target costs more and hits more.
    assert!(strict_result.hit_rate > loose_result.hit_rate);
    assert!(strict_result.total_cost > loose_result.total_cost);
}
