//! Golden regression suite: fixed-seed end-to-end runs (pipeline → plan →
//! simulator) with the headline metrics pinned to frozen expectations.
//!
//! The PR 1 periodicity bug class — a refactor that subtly dephases the
//! forecast — does not fail unit tests; it shows up as a hit rate
//! collapsing from ≥ 0.9 to ~0.6 on a periodic trace. This suite freezes
//! the qualitative floors (hit rate) *and* quantitative bands (cost,
//! `rt_avg`, relative cost) for the HP and cost-constrained rules, plus
//! the closed-loop online harness, so any future hot-path rework that
//! shifts the numbers must consciously re-pin them.
//!
//! Everything here is deterministic: synthetic traces, Monte Carlo
//! machinery and the simulator all run from fixed seeds, and a repeat run
//! must reproduce the metrics bit for bit.

use robustscaler::core::{
    evaluate_policy, EvaluationResult, RobustScalerConfig, RobustScalerPipeline,
    RobustScalerVariant,
};
use robustscaler::online::{run_closed_loop, HarnessConfig, OnlineConfig};
use robustscaler::simulator::{PendingTimeDistribution, SimulationConfig, Trace};
use robustscaler::traces::{google_like, ProcessingTimeModel, TraceConfig};

const HOUR: f64 = 3_600.0;

/// The bundled golden workload: 4 days of the Google-like diurnal trace
/// for training plus a 12-hour test window, fixed seed.
fn golden_trace() -> Trace {
    google_like(&TraceConfig {
        duration: 108.0 * HOUR,
        traffic_scale: 0.5,
        processing: ProcessingTimeModel::Exponential { mean: 20.0 },
        seed: 424_242,
    })
}

fn golden_config(variant: RobustScalerVariant) -> RobustScalerConfig {
    let mut config = RobustScalerConfig::for_variant(variant);
    config.mean_processing = 20.0;
    config.monte_carlo_samples = 300;
    config.planning_interval = 10.0;
    config.admm.max_iterations = 80;
    config.seed = 7;
    config
}

fn golden_sim() -> SimulationConfig {
    SimulationConfig {
        pending: PendingTimeDistribution::Deterministic(13.0),
        seed: 9,
        recent_history_window: 600.0,
    }
}

fn run_offline(variant: RobustScalerVariant) -> EvaluationResult {
    let trace = golden_trace();
    let (train, test) = trace.split_at(trace.start() + 96.0 * HOUR).unwrap();
    let mut policy = RobustScalerPipeline::new(golden_config(variant))
        .unwrap()
        .build_policy(&train)
        .unwrap();
    let (result, _) = evaluate_policy(&test, &mut policy, golden_sim()).unwrap();
    result
}

/// Assert `value` lies within ±`tolerance` (relative) of `golden`.
fn assert_within(metric: &str, value: f64, golden: f64, tolerance: f64) {
    let deviation = (value - golden).abs() / golden.abs().max(1e-12);
    assert!(
        deviation <= tolerance,
        "{metric} = {value} drifted {:.1}% from the golden {golden} (tolerance {:.0}%) — \
         if the change is intentional, re-pin the golden value",
        100.0 * deviation,
        100.0 * tolerance,
    );
}

#[test]
fn golden_hp_rule_offline() {
    let result = run_offline(RobustScalerVariant::HittingProbability { target: 0.98 });
    eprintln!(
        "GOLDEN hp: hit={} rt={} cost={} rel={}",
        result.hit_rate, result.rt_avg, result.total_cost, result.relative_cost
    );
    // Hard floor from the paper's target: the forecast must keep ≥ 90% of
    // queries hitting a warm instance.
    assert!(
        result.hit_rate >= 0.9,
        "HP hit rate {} fell below the 0.9 floor (forecast dephased?)",
        result.hit_rate
    );
    assert!(result.hit_rate < 1.0, "hit rate 1.0 → over-provisioning");
    // Golden values measured at pin time (hit 0.9391, rt 19.84 s,
    // cost 319 414 s, relative 1.91); bands absorb benign numeric drift.
    assert_within("hp rt_avg", result.rt_avg, 19.8, 0.10);
    assert_within("hp total_cost", result.total_cost, 320_000.0, 0.15);
    assert_within("hp relative_cost", result.relative_cost, 1.9, 0.15);
}

#[test]
fn golden_cost_rule_offline() {
    // Budget 40 s/instance = pending 13 + processing 20 + 7 s idle budget.
    let result = run_offline(RobustScalerVariant::CostBudget { budget: 40.0 });
    eprintln!(
        "GOLDEN cost: hit={} rt={} cost={} cost/q={} rel={}",
        result.hit_rate,
        result.rt_avg,
        result.total_cost,
        result.total_cost / result.queries as f64,
        result.relative_cost
    );
    // The cost variant honors its per-instance budget on average...
    let cost_per_query = result.total_cost / result.queries as f64;
    assert!(
        cost_per_query <= 42.0,
        "cost/query {cost_per_query} blew the 40 s budget"
    );
    // ...while still hitting usefully more often than reactive (0%).
    assert!(result.hit_rate > 0.3, "cost hit rate {}", result.hit_rate);
    // Golden values at pin time: hit 0.4148, rt 24.38 s, cost 192 903 s
    // (37.5 s/query), relative 1.15.
    assert_within("cost rt_avg", result.rt_avg, 24.4, 0.10);
    assert_within("cost total_cost", result.total_cost, 193_000.0, 0.15);
    assert_within("cost relative_cost", result.relative_cost, 1.15, 0.15);
}

#[test]
fn golden_online_harness_closed_loop() {
    // The serving-layer acceptance bar: a closed-loop replay (ingest →
    // drift/refit → plan → simulate) on the bundled trace holds the HP
    // floor with a fixed seed.
    let trace = google_like(&TraceConfig {
        duration: 36.0 * HOUR,
        traffic_scale: 0.5,
        processing: ProcessingTimeModel::Exponential { mean: 20.0 },
        seed: 31_337,
    });
    let mut online = OnlineConfig::new(golden_config(RobustScalerVariant::HittingProbability {
        target: 0.98,
    }));
    online.window_buckets = 2_880;
    online.min_training_buckets = 600;
    online.refit_interval = 4.0 * HOUR;
    let config = HarnessConfig {
        online,
        sim: golden_sim(),
        warmup: 24.0 * HOUR,
        faults: None,
        plan_reuse: None,
    };
    let (report, _) = run_closed_loop(&trace, &config).unwrap();
    eprintln!(
        "GOLDEN online: hit={} rt={} cost={} rel={} refits={} rounds={}",
        report.hit_rate,
        report.rt_avg,
        report.total_cost,
        report.relative_cost,
        report.stats.refits,
        report.stats.planning_rounds
    );
    assert!(
        report.hit_rate >= 0.9,
        "online HP hit rate {} fell below the 0.9 floor",
        report.hit_rate
    );
    // Golden values at pin time: hit 0.9053, rt 20.96 s, cost 355 714 s,
    // 7 refits over the 12 h replay.
    assert_within("online rt_avg", report.rt_avg, 21.0, 0.10);
    assert_within("online total_cost", report.total_cost, 356_000.0, 0.15);
    assert!(
        report.stats.refits >= 2,
        "rolling refits did not run (refits = {})",
        report.stats.refits
    );

    // Bit-for-bit determinism: the same configuration replays to the same
    // report (Monte Carlo, simulator and refit schedule all seeded).
    let (repeat, _) = run_closed_loop(&trace, &config).unwrap();
    assert_eq!(report, repeat, "closed-loop replay is not deterministic");
}
