//! Property-based integration tests spanning crates: invariants that must
//! hold for arbitrary workloads, policies and decision parameters.

use proptest::prelude::*;
use robustscaler::scaling::{cost, hit, response_time, solve_idle_cost_root, solve_waiting_root};
use robustscaler::simulator::{
    BackupPool, PendingTimeDistribution, Query, Reactive, SimulationConfig, Simulator, Trace,
};

/// Strategy: a small random trace with positive inter-arrival gaps.
fn trace_strategy() -> impl Strategy<Value = Trace> {
    (
        prop::collection::vec((0.1_f64..50.0, 0.5_f64..30.0), 5..60),
        0.0_f64..100.0,
    )
        .prop_map(|(gaps_and_processing, start)| {
            let mut t = start;
            let queries: Vec<Query> = gaps_and_processing
                .into_iter()
                .map(|(gap, processing)| {
                    t += gap;
                    Query {
                        arrival: t,
                        processing,
                    }
                })
                .collect();
            Trace::new("random", queries).unwrap()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every query is served exactly once, the total cost is at least the
    /// irreducible pending+processing cost of the served queries, and the
    /// reactive baseline never hits.
    #[test]
    fn simulator_conservation_laws(trace in trace_strategy(), pool_size in 0usize..5) {
        let sim = Simulator::new(SimulationConfig {
            pending: PendingTimeDistribution::Deterministic(7.0),
            seed: 3,
            recent_history_window: 300.0,
        }).unwrap();

        let mut policy = BackupPool::new(pool_size);
        let metrics = sim.run(&trace, &mut policy).unwrap();
        prop_assert_eq!(metrics.query_count(), trace.len());
        let served = metrics.instances.iter().filter(|i| i.served_query).count();
        prop_assert_eq!(served, trace.len());

        // Response times are at least the processing time of the query.
        for (outcome, query) in metrics.queries.iter().zip(trace.queries()) {
            prop_assert!(outcome.response_time >= query.processing - 1e-9);
            prop_assert!(outcome.waiting_time >= 0.0);
            prop_assert!(outcome.response_time <= query.processing + 7.0 + 1e-9);
        }

        // Total cost is bounded below by the served queries' processing times
        // and above by adding a full pending + idle allowance per instance.
        let processing_total: f64 = trace.queries().iter().map(|q| q.processing).sum();
        prop_assert!(metrics.total_cost() >= processing_total - 1e-6);

        // The reactive baseline never hits and its cost is exactly
        // pending + processing per query.
        let mut reactive = Reactive::new();
        let reactive_metrics = sim.run(&trace, &mut reactive).unwrap();
        prop_assert_eq!(reactive_metrics.hit_rate(), 0.0);
        let expected: f64 = trace.queries().iter().map(|q| q.processing + 7.0).sum();
        prop_assert!((reactive_metrics.total_cost() - expected).abs() < 1e-6);

        // A warm pool can only improve (or tie) hit rate and rt_avg relative
        // to reactive.
        prop_assert!(metrics.hit_rate() >= reactive_metrics.hit_rate());
        prop_assert!(metrics.rt_avg() <= reactive_metrics.rt_avg() + 1e-9);
    }

    /// The closed-form QoS metrics of §VI-A satisfy their defining
    /// identities for arbitrary parameters.
    #[test]
    fn qos_identities(
        arrival in 0.0_f64..1_000.0,
        lead in 0.0_f64..200.0,
        pending in 0.0_f64..60.0,
        processing in 0.1_f64..100.0,
    ) {
        let creation = arrival - lead;
        let rt = response_time(arrival, creation, pending, processing);
        let c = cost(arrival, creation, pending, processing);
        let h = hit(arrival, creation, pending);

        // RT is bounded between the processing time and the cold start level.
        prop_assert!(rt >= processing - 1e-12);
        prop_assert!(rt <= processing + pending + 1e-12);
        // Hits have no waiting at all.
        if h {
            prop_assert!((rt - processing).abs() < 1e-12);
        }
        // Cost decomposition: idle + pending + processing, idle >= 0.
        let idle = c - pending - processing;
        prop_assert!(idle >= -1e-12);
        // Only hits can have strictly positive idle time.
        if idle > 1e-9 {
            prop_assert!(h);
        }
        // Creating earlier (larger lead) never decreases QoS and never
        // decreases cost.
        let rt_later = response_time(arrival, creation + 1.0, pending, processing);
        let cost_later = cost(arrival, creation + 1.0, pending, processing);
        prop_assert!(rt_later + 1e-12 >= rt);
        prop_assert!(cost_later <= c + 1e-12);
    }

    /// The sort-and-search roots actually achieve their targets, and the
    /// waiting/idle targets are monotone in the returned creation time.
    #[test]
    fn sort_and_search_achieves_targets(
        samples in prop::collection::vec((1.0_f64..500.0, 0.5_f64..40.0), 10..200),
        waiting_fraction in 0.05_f64..0.95,
        idle_fraction in 0.05_f64..0.95,
    ) {
        let pairs: Vec<(f64, f64)> = samples;
        let mean_tau: f64 = pairs.iter().map(|&(_, t)| t).sum::<f64>() / pairs.len() as f64;

        let waiting_target = waiting_fraction * mean_tau;
        let x_wait = solve_waiting_root(&pairs, waiting_target).unwrap();
        let achieved_wait: f64 = pairs
            .iter()
            .map(|&(xi, tau)| (tau - (xi - x_wait).max(0.0)).max(0.0))
            .sum::<f64>() / pairs.len() as f64;
        prop_assert!((achieved_wait - waiting_target).abs() < 1e-6);

        let max_idle: f64 = pairs
            .iter()
            .map(|&(xi, tau)| (xi - tau).max(0.0))
            .sum::<f64>() / pairs.len() as f64;
        prop_assume!(max_idle > 1e-6);
        let idle_target = idle_fraction * max_idle * 0.5;
        let x_idle = solve_idle_cost_root(&pairs, idle_target).unwrap();
        let achieved_idle: f64 = pairs
            .iter()
            .map(|&(xi, tau)| (xi - tau - x_idle).max(0.0))
            .sum::<f64>() / pairs.len() as f64;
        prop_assert!((achieved_idle - idle_target).abs() < 1e-6);
    }
}
