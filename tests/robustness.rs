//! Robustness integration tests (paper §VII-B3): injecting missing data or
//! removing anomalies from the *training* data should barely change the
//! QoS/cost the trained policy delivers on the untouched test window.

use robustscaler::core::{
    evaluate_policy, EvaluationResult, RobustScalerConfig, RobustScalerPipeline,
    RobustScalerVariant,
};
use robustscaler::simulator::{PendingTimeDistribution, SimulationConfig, Trace};
use robustscaler::traces::{
    alibaba_like, crs_like, erase_burst, remove_day, ProcessingTimeModel, TraceConfig,
};

const DAY: f64 = 86_400.0;
const HOUR: f64 = 3_600.0;

fn sim_config(seed: u64) -> SimulationConfig {
    SimulationConfig {
        pending: PendingTimeDistribution::Deterministic(13.0),
        seed,
        recent_history_window: 600.0,
    }
}

fn evaluate_with_training(
    train: &Trace,
    test: &Trace,
    mean_processing: f64,
    seed: u64,
) -> EvaluationResult {
    let mut config =
        RobustScalerConfig::for_variant(RobustScalerVariant::HittingProbability { target: 0.9 });
    config.mean_processing = mean_processing;
    config.monte_carlo_samples = 200;
    config.planning_interval = 30.0;
    config.admm.max_iterations = 80;
    let mut policy = RobustScalerPipeline::new(config)
        .unwrap()
        .build_policy(train)
        .unwrap();
    let (result, _) = evaluate_policy(test, &mut policy, sim_config(seed)).unwrap();
    result
}

#[test]
fn missing_training_day_barely_changes_qos_and_cost() {
    // Two weeks of CRS-like traffic at higher scale so the comparison is not
    // dominated by sampling noise; train on the first 10 days.
    let trace = crs_like(&TraceConfig {
        duration: 14.0 * DAY,
        traffic_scale: 6.0,
        processing: ProcessingTimeModel::LogNormal {
            mean: 180.0,
            std_dev: 120.0,
        },
        seed: 71,
    });
    let (train, test) = trace.split_at(trace.start() + 10.0 * DAY).unwrap();
    // Remove one full day (day 6) from the training data only.
    let train_missing = remove_day(&train, 6);
    assert!(train_missing.len() < train.len());

    let baseline = evaluate_with_training(&train, &test, 180.0, 1);
    let with_missing = evaluate_with_training(&train_missing, &test, 180.0, 1);

    assert!(
        (baseline.hit_rate - with_missing.hit_rate).abs() < 0.08,
        "hit rate moved from {} to {} after removing a training day",
        baseline.hit_rate,
        with_missing.hit_rate
    );
    let cost_change = (baseline.relative_cost - with_missing.relative_cost).abs()
        / baseline.relative_cost.max(1e-9);
    assert!(
        cost_change < 0.20,
        "relative cost moved by {:.1}% after removing a training day",
        100.0 * cost_change
    );
}

#[test]
fn erasing_the_training_burst_barely_changes_qos() {
    // Alibaba-like trace with the day-4 burst; train on the first 4 days.
    let trace = alibaba_like(&TraceConfig {
        duration: 5.0 * DAY,
        traffic_scale: 0.12,
        processing: ProcessingTimeModel::Exponential { mean: 30.0 },
        seed: 72,
    });
    let (train, test) = trace.split_at(trace.start() + 4.0 * DAY).unwrap();
    let burst_start = 3.0 * DAY + 15.0 * HOUR;
    let train_clean = erase_burst(&train, burst_start, burst_start + 2_400.0, 0.15, 5);
    assert!(train_clean.len() < train.len());

    let with_burst = evaluate_with_training(&train, &test, 30.0, 2);
    let without_burst = evaluate_with_training(&train_clean, &test, 30.0, 2);

    assert!(
        (with_burst.hit_rate - without_burst.hit_rate).abs() < 0.08,
        "hit rate moved from {} to {} after erasing the burst",
        with_burst.hit_rate,
        without_burst.hit_rate
    );
    let cost_change = (with_burst.relative_cost - without_burst.relative_cost).abs()
        / with_burst.relative_cost.max(1e-9);
    assert!(
        cost_change < 0.20,
        "relative cost moved by {:.1}% after erasing the burst",
        100.0 * cost_change
    );
}
