//! Chaos suite: deterministic fault injection against the supervised
//! fleet and the self-healing checkpoint store.
//!
//! Every fault here comes from a seeded [`FaultPlan`] — a pure function
//! of (seed, round, tenant, path tag, call count) — so each scenario is
//! reproducible bit-for-bit. The suite pins the three robustness
//! contracts:
//!
//! 1. **isolation** — a faulty tenant (errors, panics, corrupted
//!    arrivals) never perturbs its healthy neighbors' plans, at any
//!    worker count;
//! 2. **durability** — the checkpoint directory stays restorable after
//!    any injected crash point, falling back to the newest restorable
//!    generation when the current one is torn;
//! 3. **determinism** — the same seed and fault plan reproduce the same
//!    outcomes, including every quarantine, probe and recovery action,
//!    and a recorded chaos session (crash + restore included) replays
//!    strictly.

use proptest::prelude::*;
use robustscaler::core::{RobustScalerConfig, RobustScalerVariant};
use robustscaler::online::{
    replay_path, BusConfig, FaultPlan, FaultyStorage, OnlineConfig, OsStorage, PolicyBands,
    RecoveryAction, ReplayMode, SupervisorConfig, TenantFleet, TraceRecorder,
};
use std::sync::Arc;

fn chaos_config() -> OnlineConfig {
    let mut pipeline =
        RobustScalerConfig::for_variant(RobustScalerVariant::HittingProbability { target: 0.9 });
    pipeline.bucket_width = 10.0;
    pipeline.periodicity_aggregation = 2;
    pipeline.admm.max_iterations = 30;
    pipeline.monte_carlo_samples = 60;
    pipeline.planning_interval = 20.0;
    pipeline.mean_processing = 5.0;
    pipeline.forecast_horizon = 400.0;
    let mut config = OnlineConfig::new(pipeline);
    config.window_buckets = 256;
    config.min_training_buckets = 10;
    config
}

fn small_bus() -> BusConfig {
    BusConfig {
        capacity_per_tenant: 4_096,
        tenants_per_group: 2,
        ..BusConfig::default()
    }
}

/// A fresh scratch directory under the (possibly CI-isolated) TMPDIR.
fn scratch(tag: &str) -> std::path::PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static N: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "robustscaler-chaos-{tag}-{}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Silence the default panic hook's stderr spew for *injected* panics
/// (the fleet's `catch_unwind` boundaries still see the payload).
fn silence_injected_panics() {
    use std::sync::Once;
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let message = info
                .payload()
                .downcast_ref::<&str>()
                .map(|m| (*m).to_string())
                .or_else(|| info.payload().downcast_ref::<String>().cloned())
                .unwrap_or_default();
            if !message.contains("injected") {
                previous(info);
            }
        }));
    });
}

/// Enqueue round `round`'s traffic window on the fleet's bus: tenant `i`
/// sees one arrival every `4 + i` seconds; round 0 covers the 400 s
/// training prefix, later rounds one 20 s planning interval each.
fn enqueue_window(fleet: &TenantFleet, round: u64) {
    let (lo, hi) = if round == 0 {
        (0.0, 400.0)
    } else {
        (
            400.0 + 20.0 * (round - 1) as f64,
            400.0 + 20.0 * round as f64,
        )
    };
    for index in 0..fleet.len() {
        let gap = 4.0 + index as f64;
        let first = (lo / gap).ceil() as usize;
        for t in (first..).map(|k| k as f64 * gap).take_while(|t| *t < hi) {
            assert!(fleet.enqueue(index, t).unwrap(), "queue overflow");
        }
    }
}

fn round_now(round: u64) -> f64 {
    400.0 + 20.0 * round as f64
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// One faulty tenant — planning errors or panics plus corrupted
    /// arrivals, all targeted at a single victim — leaves every healthy
    /// tenant's `PlanningRound` bit-identical to a fault-free run, at 1,
    /// 3 and 8 workers.
    #[test]
    fn faulty_neighbor_never_perturbs_healthy_tenants(
        seed in 0u64..1_000,
        victim in 0usize..3,
        flavor in 0u8..2,
    ) {
        silence_injected_panics();
        let panic_flavor = flavor == 1;
        let tenants = 3usize;
        let config = chaos_config();
        let run = |faults: Option<FaultPlan>, workers: usize| {
            let mut fleet = TenantFleet::new(&config, 0.0, tenants, seed).unwrap();
            fleet.set_workers(workers);
            fleet.attach_bus(small_bus()).unwrap();
            if let Some(plan) = faults {
                fleet.set_faults(plan);
            }
            let mut all = Vec::new();
            for round in 0..4u64 {
                enqueue_window(&fleet, round);
                all.push(fleet.run_round_uniform(round_now(round), 0).unwrap());
            }
            all
        };
        let plan = FaultPlan {
            seed,
            plan_error: if panic_flavor { 0.0 } else { 0.7 },
            plan_panic: if panic_flavor { 0.7 } else { 0.0 },
            arrival_nan: 0.5,
            clock_skew: 0.3,
            clock_skew_secs: -35.0,
            target_tenant: Some(victim as u64),
            ..FaultPlan::default()
        };
        let clean = run(None, 1);
        for workers in [1usize, 3, 8] {
            let chaotic = run(Some(plan), workers);
            for (round, (clean_round, chaotic_round)) in
                clean.iter().zip(chaotic.iter()).enumerate()
            {
                for tenant in 0..tenants {
                    if tenant == victim {
                        continue;
                    }
                    prop_assert_eq!(
                        &clean_round[tenant],
                        &chaotic_round[tenant],
                        "round {} tenant {} workers {}",
                        round,
                        tenant,
                        workers
                    );
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Whatever write-side I/O faults a checkpoint attempt hits — torn
    /// shard writes, failed manifest renames, broken reuse links — the
    /// directory always restores afterwards, to the state of *some*
    /// successfully completed checkpoint.
    #[test]
    fn checkpoint_directory_survives_any_injected_crash_point(
        seed in 0u64..10_000,
        io_p in 0.1f64..0.9,
    ) {
        let config = chaos_config();
        let dir = scratch("ckpt");
        let mut fleet = TenantFleet::new(&config, 0.0, 4, seed).unwrap();
        for index in 0..4 {
            let gap = 4.0 + index as f64;
            for k in 0..(400.0 / gap) as usize {
                fleet.ingest(index, k as f64 * gap).unwrap();
            }
        }
        fleet.run_round_uniform(400.0, 0).unwrap();
        // Generation 1 lands cleanly; every later generation fights the
        // injected I/O fault schedule.
        fleet.checkpoint_sharded(&dir, 2).unwrap();
        let mut good_states = vec![fleet.aggregate_stats()];
        fleet.set_checkpoint_storage(Arc::new(FaultyStorage::new(FaultPlan {
            seed,
            checkpoint_io: io_p,
            ..FaultPlan::default()
        })));
        for round in 1..4u64 {
            let now = round_now(round);
            fleet.ingest(0, now - 1.0).unwrap();
            fleet.run_round_uniform(now, 0).unwrap();
            if fleet.checkpoint_sharded(&dir, 2).is_ok() {
                good_states.push(fleet.aggregate_stats());
            }
            let restored = TenantFleet::restore(&dir, &config);
            prop_assert!(
                restored.is_ok(),
                "unrestorable after injected crash point (round {}): {:?}",
                round,
                restored.err()
            );
            let restored_stats = restored.unwrap().aggregate_stats();
            prop_assert!(
                good_states.contains(&restored_stats),
                "restored to a state no successful checkpoint captured"
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// The determinism contract under chaos: the same base seed, fault plan
/// and supervision policy reproduce bit-identical supervised rounds —
/// every plan, every degraded fallback, every quarantine entry, probe
/// and recovery — plus identical serving and supervision counters.
#[test]
fn chaos_runs_are_bit_deterministic() {
    silence_injected_panics();
    let config = chaos_config();
    let plan = FaultPlan {
        seed: 77,
        plan_error: 0.4,
        plan_panic: 0.2,
        arrival_nan: 0.3,
        clock_skew: 0.2,
        clock_skew_secs: -45.0,
        ..FaultPlan::default()
    };
    let supervisor = SupervisorConfig {
        quarantine_after: 1,
        probe_backoff: 1,
        max_backoff: 4,
        recovery: RecoveryAction::ForceRefit,
        snapshot_every: 4,
    };
    let run = || {
        let mut fleet = TenantFleet::new(&config, 0.0, 4, 9).unwrap();
        fleet.attach_bus(small_bus()).unwrap();
        fleet.set_supervisor(supervisor);
        fleet.set_faults(plan);
        let mut rounds = Vec::new();
        for round in 0..8u64 {
            enqueue_window(&fleet, round);
            rounds.push(
                fleet
                    .run_round_supervised(round_now(round), &[0; 4])
                    .unwrap(),
            );
        }
        (rounds, fleet.supervision_stats(), fleet.aggregate_stats())
    };
    let first = run();
    let second = run();
    assert_eq!(first, second, "same seed + fault plan diverged");
    // The schedule actually did something: at least one failure and one
    // recovery action happened over the 8 rounds.
    assert!(
        first.1.failures > 0,
        "fault plan never fired: {:?}",
        first.1
    );
}

/// A recorded chaos session — injected planning errors and arrival
/// corruption, plus a mid-session crash whose checkpoint is written
/// through faulty storage — restores, continues recording the *same*
/// trace, and replays bit-for-bit (strict) and within QoS bands
/// (lenient).
#[test]
fn recorded_chaos_session_survives_crash_restore_and_replays() {
    let config = chaos_config();
    let ckpt_dir = scratch("replay-ckpt");
    let trace_dir = scratch("replay-trace");
    std::fs::create_dir_all(&trace_dir).unwrap();
    let trace_path = trace_dir.join("chaos.jsonl");

    let plan = FaultPlan {
        seed: 5,
        plan_error: 0.5,
        arrival_nan: 0.4,
        clock_skew: 0.25,
        clock_skew_secs: 30.0,
        ..FaultPlan::default()
    };
    let supervisor = SupervisorConfig {
        quarantine_after: 1,
        probe_backoff: 1,
        max_backoff: 2,
        recovery: RecoveryAction::ForceRefit,
        snapshot_every: 0,
    };
    let base_seed = 21u64;
    let mut fleet = TenantFleet::new(&config, 0.0, 3, base_seed).unwrap();
    fleet.attach_bus(small_bus()).unwrap();
    fleet.set_supervisor(supervisor);
    fleet.set_faults(plan);
    let header = fleet.trace_header(base_seed);
    fleet
        .start_recording(TraceRecorder::to_file(&trace_path, &header).unwrap())
        .unwrap();
    for round in 0..3u64 {
        enqueue_window(&fleet, round);
        fleet.run_round_uniform(round_now(round), 0).unwrap();
    }

    // Mid-session crash: the checkpoint is written through faulty
    // storage (exercising write retries and reuse fallbacks); if the
    // whole attempt still fails, the caller's self-healing move is a
    // full rewrite on clean storage — the directory is never left
    // unrestorable either way.
    fleet.set_checkpoint_storage(Arc::new(FaultyStorage::new(FaultPlan {
        seed: 6,
        checkpoint_io: 0.3,
        ..FaultPlan::default()
    })));
    if fleet.checkpoint_sharded(&ckpt_dir, 2).is_err() {
        fleet.set_checkpoint_storage(Arc::new(OsStorage));
        fleet.checkpoint_sharded(&ckpt_dir, 2).unwrap();
    }
    let recorder = fleet.take_recorder().unwrap().unwrap();
    let stats_at_crash = fleet.aggregate_stats();
    drop(fleet);

    // The successor process: restore from disk, re-apply the runtime
    // wiring (policy, fault plan, recorder) and keep serving.
    let mut restored = TenantFleet::restore(&ckpt_dir, &config).unwrap();
    assert_eq!(restored.round(), 3, "restored mid-session round counter");
    assert_eq!(restored.aggregate_stats(), stats_at_crash);
    restored.set_supervisor(supervisor);
    restored.set_faults(plan);
    restored.start_recording(recorder).unwrap();
    for round in 3..6u64 {
        enqueue_window(&restored, round);
        restored.run_round_uniform(round_now(round), 0).unwrap();
    }
    let summary = restored.finish_recording().unwrap().unwrap();
    assert_eq!(summary.rounds, 6);

    // The spliced trace replays as one continuous session: strictly
    // (bit-identical plans, errors, refits and counters across the
    // crash) and leniently within trivially-satisfied QoS bands.
    let strict = replay_path(&trace_path, ReplayMode::Strict, &PolicyBands::default()).unwrap();
    assert!(
        strict.passed(),
        "strict divergence: {:?}",
        strict.divergences
    );
    assert_eq!(strict.rounds, 6);
    let lenient = replay_path(
        &trace_path,
        ReplayMode::Lenient,
        &PolicyBands {
            min_hit_rate: None,
            max_rt_avg: None,
            max_relative_cost: None,
        },
    )
    .unwrap();
    assert!(
        lenient.passed(),
        "lenient violations: {:?}",
        lenient.band_violations
    );

    let _ = std::fs::remove_dir_all(&ckpt_dir);
    let _ = std::fs::remove_dir_all(&trace_dir);
}

// ---------------------------------------------------------------------------
// Hibernating-tier chaos: faults at the residency seams
// ---------------------------------------------------------------------------

fn residency_config() -> robustscaler::online::ResidencyConfig {
    robustscaler::online::ResidencyConfig {
        cold_after: 2,
        idle_epsilon: 1e-9,
        start_cold: true,
    }
}

/// Enqueue one planning window (round 0 carries the training prefix)
/// for tenants `0..active` only; the rest stay dark.
fn enqueue_active(fleet: &TenantFleet, round: u64, active: usize) {
    let (lo, hi) = if round == 0 {
        (0.0, 400.0)
    } else {
        (round_now(round - 1), round_now(round))
    };
    for index in 0..active {
        let gap = 4.0 + index as f64;
        let first = (lo / gap).ceil() as usize;
        for t in (first..).map(|k| k as f64 * gap).take_while(|t| *t < hi) {
            assert!(fleet.enqueue(index, t).unwrap(), "queue overflow");
        }
    }
}

/// Drive a residency fleet: steady traffic to tenants `0..3`, the dark
/// tenant 4 poked awake at rounds 2 and 6 (hibernating again in
/// between), collecting every round's per-tenant results.
fn drive_residency(
    fleet: &mut TenantFleet,
    rounds: u64,
) -> Vec<Vec<Result<robustscaler::scaling::PlanningRound, robustscaler::online::OnlineError>>> {
    let mut all = Vec::new();
    for round in 0..rounds {
        if round == 2 || round == 6 {
            assert!(fleet.tenant_mut(4).is_some());
        }
        enqueue_active(fleet, round, 3);
        all.push(fleet.run_round_uniform(round_now(round), 0).unwrap());
    }
    all
}

/// A tenant faulted *while it wakes* stays isolated: every healthy
/// neighbor's plans are bit-identical to a fault-free run, and the
/// failing tenant never hibernates (only healthy-idle tenants go cold).
#[test]
fn faulty_wake_never_perturbs_healthy_neighbors() {
    let config = chaos_config();
    let build = || {
        let mut fleet = TenantFleet::new(&config, 0.0, 5, 17).unwrap();
        fleet.enable_residency(residency_config()).unwrap();
        fleet.attach_bus(small_bus()).unwrap();
        fleet
    };

    let clean_rounds = {
        let mut clean = build();
        drive_residency(&mut clean, 9)
    };

    let mut faulted = build();
    faulted.set_faults(FaultPlan {
        seed: 4242,
        plan_error: 0.7,
        target_tenant: Some(4),
        ..FaultPlan::default()
    });
    let faulted_rounds = drive_residency(&mut faulted, 9);

    let mut injected = 0;
    for (round, (clean_row, faulted_row)) in clean_rounds.iter().zip(&faulted_rounds).enumerate() {
        for tenant in 0..4 {
            assert_eq!(
                clean_row[tenant], faulted_row[tenant],
                "healthy tenant {tenant} perturbed at round {round}"
            );
        }
        if matches!(
            faulted_row[4],
            Err(robustscaler::online::OnlineError::Injected { .. })
        ) {
            injected += 1;
        }
    }
    assert!(injected > 0, "fault plan never fired on the waking tenant");
    // A failing tenant is never healthy-idle, so it must not hibernate
    // while faulted; hibernation bookkeeping differs only on tenant 4.
    let stats = faulted.residency_stats();
    assert_eq!(
        stats.paged + stats.hot + stats.cold,
        5,
        "residency accounting out of sync: {stats:?}"
    );
}

/// Page-out I/O failure is contained: the tenant stays resident (cold
/// but safe), the failure is counted, planning results stay
/// bit-identical to a fleet that never pages, and the sweep retries
/// until the storage heals.
#[test]
fn page_out_io_failure_keeps_tenant_resident_and_bit_identical() {
    let config = chaos_config();
    let reference_rounds = {
        let mut fleet = TenantFleet::new(&config, 0.0, 5, 23).unwrap();
        fleet.enable_residency(residency_config()).unwrap();
        fleet.attach_bus(small_bus()).unwrap();
        drive_residency(&mut fleet, 9)
    };

    // Every page write fails: hibernation proceeds (the tenant goes
    // cold and is skipped), but nothing ever reaches disk.
    let dir = scratch("pageout-fault");
    let mut fleet = TenantFleet::new_cold(&config, 0.0, 5, 23, residency_config()).unwrap();
    fleet.attach_bus(small_bus()).unwrap();
    fleet.set_checkpoint_storage(Arc::new(FaultyStorage::new(FaultPlan {
        seed: 5,
        checkpoint_io: 1.0,
        ..FaultPlan::default()
    })));
    fleet.set_hibernation_dir(&dir).unwrap();
    let faulted_rounds = drive_residency(&mut fleet, 9);
    assert_eq!(reference_rounds, faulted_rounds);
    let stats = fleet.residency_stats();
    assert_eq!(stats.page_outs, 0, "{stats:?}");
    assert!(stats.page_out_failures > 0, "{stats:?}");
    assert!(stats.hibernated_total > 0, "{stats:?}");
    let _ = std::fs::remove_dir_all(&dir);

    // Flaky storage: failed page-outs are retried by the sweep and
    // eventually land, still bit-identically.
    let dir = scratch("pageout-flaky");
    let mut fleet = TenantFleet::new_cold(&config, 0.0, 5, 23, residency_config()).unwrap();
    fleet.attach_bus(small_bus()).unwrap();
    fleet.set_checkpoint_storage(Arc::new(FaultyStorage::new(FaultPlan {
        seed: 11,
        checkpoint_io: 0.35,
        ..FaultPlan::default()
    })));
    fleet.set_hibernation_dir(&dir).unwrap();
    let flaky_rounds = drive_residency(&mut fleet, 9);
    assert_eq!(reference_rounds, flaky_rounds);
    let stats = fleet.residency_stats();
    assert!(stats.page_outs > 0, "nothing ever paged out: {stats:?}");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Crash + restore with mixed residency under an active fault plan:
/// `restore_with` re-arms the supervisor, the fault schedule and the
/// page store, and the restored fleet continues bit-identically to the
/// fleet that never crashed.
#[test]
fn crash_restore_with_mixed_residency_and_faults_is_bit_identical() {
    let config = chaos_config();
    let pages = scratch("mixed-fault-pages");
    let ckpt = scratch("mixed-fault-ckpt");
    let supervisor = SupervisorConfig {
        quarantine_after: 3,
        probe_backoff: 1,
        max_backoff: 4,
        recovery: RecoveryAction::ForceRefit,
        snapshot_every: 0,
    };
    let faults = FaultPlan {
        seed: 2024,
        plan_error: 0.3,
        target_tenant: Some(1),
        ..FaultPlan::default()
    };

    let mut live = TenantFleet::new_cold(&config, 0.0, 5, 41, residency_config()).unwrap();
    live.attach_bus(small_bus()).unwrap();
    live.set_hibernation_dir(&pages).unwrap();
    live.set_supervisor(supervisor);
    live.set_faults(faults);
    drive_residency(&mut live, 7);
    live.checkpoint_sharded(&ckpt, 2).unwrap();

    let continue_run = |fleet: &mut TenantFleet| {
        let mut rounds = Vec::new();
        for round in 7..10u64 {
            enqueue_active(fleet, round, 3);
            rounds.push(fleet.run_round_uniform(round_now(round), 0).unwrap());
        }
        (rounds, fleet.supervision_stats())
    };
    let live_result = continue_run(&mut live);

    for workers in [1usize, 3, 8] {
        let (mut restored, _) = TenantFleet::restore_with(
            &ckpt,
            &config,
            robustscaler::online::RestoreOptions {
                supervisor: Some(supervisor),
                faults: Some(faults),
                hibernation_dir: Some(pages.clone()),
                ..Default::default()
            },
        )
        .unwrap();
        assert!(!restored.restored_unarmed());
        restored.set_workers(workers);
        let restored_result = continue_run(&mut restored);
        assert_eq!(
            live_result, restored_result,
            "restored chaos fleet diverged at {workers} workers"
        );
    }

    let _ = std::fs::remove_dir_all(&pages);
    let _ = std::fs::remove_dir_all(&ckpt);
}
