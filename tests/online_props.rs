//! Property-based tests of the online serving layer: incremental ingestion
//! must be indistinguishable from batch processing, bus-fed ingestion
//! (enqueue + round-boundary drain) must be indistinguishable from direct
//! synchronous ingestion, and fleet output must not depend on the
//! worker-thread count.

use proptest::prelude::*;
use robustscaler::core::{RobustScalerConfig, RobustScalerVariant};
use robustscaler::online::{BusConfig, OnlineConfig, OnlineScaler, SharingConfig, TenantFleet};
use robustscaler::timeseries::{CountRing, TimeSeries};

fn online_config(bucket_width: f64) -> OnlineConfig {
    let mut pipeline =
        RobustScalerConfig::for_variant(RobustScalerVariant::HittingProbability { target: 0.9 });
    pipeline.bucket_width = bucket_width;
    pipeline.periodicity_aggregation = 2;
    pipeline.admm.max_iterations = 30;
    pipeline.monte_carlo_samples = 60;
    pipeline.planning_interval = 20.0;
    pipeline.mean_processing = 5.0;
    pipeline.forecast_horizon = 400.0;
    let mut config = OnlineConfig::new(pipeline);
    config.window_buckets = 256;
    config.min_training_buckets = 10;
    config
}

/// Strategy: a sorted list of arrival times over [0, 600) plus a chunking
/// pattern for incremental delivery.
fn arrivals_and_chunks() -> impl Strategy<Value = (Vec<f64>, Vec<usize>)> {
    (
        prop::collection::vec(0.0_f64..600.0, 40..200),
        prop::collection::vec(1usize..20, 1..40),
    )
        .prop_map(|(mut arrivals, chunks)| {
            arrivals.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
            (arrivals, chunks)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Chunked ring ingestion reproduces batch aggregation exactly.
    #[test]
    fn ring_ingestion_equals_batch_aggregation(
        input in arrivals_and_chunks(),
        bucket_width in 5.0_f64..30.0,
    ) {
        let (arrivals, chunks) = input;
        let mut ring = CountRing::new(0.0, bucket_width, 512).unwrap();
        let mut fed = 0;
        let mut chunk_index = 0;
        while fed < arrivals.len() {
            let size = chunks[chunk_index % chunks.len()].min(arrivals.len() - fed);
            ring.observe_batch(&arrivals[fed..fed + size]);
            fed += size;
            chunk_index += 1;
        }
        let series = ring.series().unwrap();
        // Batch reference on the same origin-anchored grid (re-anchoring at
        // series.start() would bin boundary-straddling events differently
        // due to floating-point rounding — the grid is part of the
        // contract).
        let batch = TimeSeries::from_event_times(&arrivals, 0.0, 600.0, bucket_width).unwrap();
        let first = (series.start() / bucket_width).round() as usize;
        prop_assert!(first + series.len() <= batch.len());
        for i in 0..first {
            prop_assert_eq!(batch.get(i), Some(0.0));
        }
        for i in 0..series.len() {
            prop_assert_eq!(series.get(i), batch.get(first + i));
        }
        prop_assert_eq!(ring.observed() as usize, arrivals.len());
    }

}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Incremental ingestion + refit fits the same model as batch training
    /// on the same prefix of history.
    #[test]
    fn incremental_refit_equals_batch_training(
        input in arrivals_and_chunks(),
    ) {
        let (arrivals, chunks) = input;
        let config = online_config(10.0);
        let mut scaler = OnlineScaler::new(config, 0.0).unwrap();
        let mut fed = 0;
        let mut chunk_index = 0;
        while fed < arrivals.len() {
            let size = chunks[chunk_index % chunks.len()].min(arrivals.len() - fed);
            scaler.ingest_batch(&arrivals[fed..fed + size]);
            fed += size;
            chunk_index += 1;
        }
        scaler.refit_now(600.0).unwrap();
        let online_model = scaler.model().expect("fitted").clone();

        // Batch reference: aggregate the same prefix once and train through
        // the same pipeline entry point.
        let batch_counts = TimeSeries::from_event_times(
            &arrivals,
            online_model.start(),
            online_model.end(),
            10.0,
        )
        .unwrap();
        let pipeline = robustscaler::core::RobustScalerPipeline::new(config.pipeline).unwrap();
        let batch_model = pipeline.train_on_counts(batch_counts).unwrap().model;

        prop_assert_eq!(online_model.log_rates().len(), batch_model.log_rates().len());
        for (a, b) in online_model
            .log_rates()
            .iter()
            .zip(batch_model.log_rates().iter())
        {
            prop_assert!((a - b).abs() < 1e-9, "log-rate {a} vs {b}");
        }
        prop_assert_eq!(online_model.period(), batch_model.period());
    }

}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The batched ingestion fast path (`ingest_batch` → ring bulk append)
    /// is bit-identical to the per-arrival reference loop — ring contents,
    /// serving counters, and the drift/refit decisions taken at the next
    /// round boundary — for arbitrary (not necessarily sorted) inputs.
    #[test]
    fn batched_ingestion_equals_the_per_arrival_loop(
        input in arrivals_and_chunks(),
        shuffle_stride in 1usize..7,
        seed in 0u64..1_000,
    ) {
        let (sorted, chunks) = input;
        // Derange the tail a little so out-of-order drops are exercised.
        let mut arrivals = sorted;
        let n = arrivals.len();
        for i in (shuffle_stride..n).step_by(shuffle_stride * 2) {
            arrivals.swap(i - shuffle_stride, i);
        }
        let config = online_config(10.0);
        let mut bulk = OnlineScaler::with_seed(config, 0.0, seed).unwrap();
        let mut reference = OnlineScaler::with_seed(config, 0.0, seed).unwrap();
        let mut fed = 0;
        let mut chunk_index = 0;
        while fed < arrivals.len() {
            let size = chunks[chunk_index % chunks.len()].min(arrivals.len() - fed);
            bulk.ingest_batch(&arrivals[fed..fed + size]);
            for &t in &arrivals[fed..fed + size] {
                reference.ingest(t);
            }
            fed += size;
            chunk_index += 1;
        }
        prop_assert_eq!(bulk.stats(), reference.stats());
        prop_assert_eq!(bulk.ring(), reference.ring());
        prop_assert_eq!(bulk.plan_round(620.0, 0), reference.plan_round(620.0, 0));
        prop_assert_eq!(bulk.stats(), reference.stats());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// The acceptance contract of the ingestion runtime: enqueueing
    /// arrivals on the bus and draining them at round boundaries yields
    /// bit-identical fleet plans, serving counters and drift decisions to
    /// routing every arrival synchronously through `ingest` — for 1, 3
    /// and 8 workers.
    #[test]
    fn bus_fed_fleet_equals_direct_ingestion_for_any_worker_count(
        tenant_count in 2usize..5,
        base_seed in 0u64..1_000,
        gaps in prop::collection::vec(3.0_f64..12.0, 2..5),
        rounds in 2usize..5,
    ) {
        let config = online_config(10.0);
        // Window `r` of tenant `i`'s traffic: its uniform stream clipped to
        // [window start, window end).
        let window = |index: usize, round: usize| -> Vec<f64> {
            let gap = gaps[index % gaps.len()];
            let (lo, hi) = if round == 0 {
                (0.0, 400.0)
            } else {
                (400.0 + 20.0 * (round as f64 - 1.0), 400.0 + 20.0 * round as f64)
            };
            let first = (lo / gap).ceil() as usize;
            (first..)
                .map(|k| k as f64 * gap)
                .take_while(|t| *t < hi)
                .collect()
        };

        let run_direct = |workers: usize| {
            let mut fleet = TenantFleet::new(&config, 0.0, tenant_count, base_seed).unwrap();
            fleet.set_workers(workers);
            let mut all = Vec::new();
            for round in 0..rounds {
                for index in 0..tenant_count {
                    for t in window(index, round) {
                        fleet.ingest(index, t).unwrap();
                    }
                }
                let now = 400.0 + 20.0 * round as f64;
                all.push(fleet.run_round_uniform(now, round).unwrap());
            }
            (all, fleet.aggregate_stats())
        };
        let run_bus = |workers: usize| {
            let mut fleet = TenantFleet::new(&config, 0.0, tenant_count, base_seed).unwrap();
            fleet.set_workers(workers);
            fleet
                .attach_bus(BusConfig {
                    capacity_per_tenant: 4_096,
                    tenants_per_group: 2,
                    ..BusConfig::default()
                })
                .unwrap();
            let mut all = Vec::new();
            for round in 0..rounds {
                for index in 0..tenant_count {
                    for t in window(index, round) {
                        assert!(fleet.enqueue(index, t).unwrap(), "queue overflow");
                    }
                }
                // The drain at the round boundary ingests this window.
                let now = 400.0 + 20.0 * round as f64;
                all.push(fleet.run_round_uniform(now, round).unwrap());
            }
            (all, fleet.aggregate_stats())
        };

        let direct = run_direct(1);
        for workers in [1usize, 3, 8] {
            let bused = run_bus(workers);
            prop_assert_eq!(&direct.0, &bused.0, "plans diverged at {} workers", workers);
            prop_assert_eq!(&direct.1, &bused.1, "stats diverged at {} workers", workers);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// A fleet plans identically with 1 worker and with many.
    #[test]
    fn fleet_plans_are_worker_count_independent(
        tenant_count in 2usize..6,
        base_seed in 0u64..1_000,
        gaps in prop::collection::vec(3.0_f64..12.0, 2..6),
        rounds in 1usize..4,
    ) {
        let config = online_config(10.0);
        let run = |workers: usize| {
            let mut fleet = TenantFleet::new(&config, 0.0, tenant_count, base_seed).unwrap();
            fleet.set_workers(workers);
            for index in 0..tenant_count {
                let gap = gaps[index % gaps.len()];
                let n = (400.0 / gap) as usize;
                for k in 0..n {
                    fleet.ingest(index, k as f64 * gap).unwrap();
                }
            }
            let mut all = Vec::new();
            for round in 0..rounds {
                let now = 400.0 + 20.0 * round as f64;
                all.push(fleet.run_round_uniform(now, round).unwrap());
            }
            all
        };
        let serial = run(1);
        prop_assert_eq!(&serial, &run(3));
        prop_assert_eq!(&serial, &run(8));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Layer 1 of plan reuse: cluster-level decision dedup. With sharing
    /// enabled, turning `decision_dedup` on changes *nothing* about the
    /// output — one leader per plan-group runs the shared window walk and
    /// every follower adopts its decision vector, which is provably the
    /// vector the follower would have computed itself (deterministic
    /// pending time ⇒ the walk consumes no tenant RNG, and the shared
    /// sampler is cluster-seeded). Plans and stats must be bit-identical
    /// to the dedup-off fleet at 1, 3 and 8 workers — and with every
    /// tenant on the same traffic the fleet must actually dedup, which
    /// the fleet-level `deduped_plan_rounds` counter makes visible
    /// without perturbing any per-tenant stat.
    #[test]
    fn decision_dedup_is_bit_identical_to_shared_planning(
        tenant_count in 2usize..6,
        base_seed in 0u64..1_000,
        gap in 3.0_f64..12.0,
        rounds in 1usize..4,
    ) {
        let config = online_config(10.0);
        let run = |workers: usize, dedup: bool| {
            let mut fleet = TenantFleet::new(&config, 0.0, tenant_count, base_seed).unwrap();
            fleet.set_workers(workers);
            let mut sharing = SharingConfig::sharing_only();
            sharing.decision_dedup = dedup;
            fleet.set_sharing(sharing).unwrap();
            for index in 0..tenant_count {
                let n = (400.0 / gap) as usize;
                for k in 0..n {
                    fleet.ingest(index, k as f64 * gap).unwrap();
                }
            }
            let mut all = Vec::new();
            for round in 0..rounds {
                let now = 400.0 + 20.0 * round as f64;
                all.push(fleet.run_round_uniform(now, round).unwrap());
            }
            (all, fleet.aggregate_stats(), fleet.deduped_plan_rounds())
        };
        let baseline = run(1, false);
        prop_assert_eq!(baseline.2, 0, "dedup-off fleet must never adopt");
        for workers in [1usize, 3, 8] {
            let deduped = run(workers, true);
            prop_assert_eq!(&baseline.0, &deduped.0, "plans diverged at {} workers", workers);
            prop_assert_eq!(&baseline.1, &deduped.1, "stats diverged at {} workers", workers);
            prop_assert!(
                deduped.2 > 0,
                "identical tenants must share a plan-group and dedup (got 0 at {} workers)",
                workers
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The cross-tenant sharing switch, left disabled (its default),
    /// changes nothing: a fleet with `SharingConfig::default()` applied
    /// explicitly produces bit-identical plans and stats to a fleet that
    /// never touched it, at 1, 3 and 8 workers.
    #[test]
    fn disabled_sharing_is_bit_identical_at_any_worker_count(
        tenant_count in 2usize..6,
        base_seed in 0u64..1_000,
        gaps in prop::collection::vec(3.0_f64..12.0, 2..6),
        rounds in 1usize..4,
    ) {
        let config = online_config(10.0);
        let run = |workers: usize, explicit_off: bool| {
            let mut fleet = TenantFleet::new(&config, 0.0, tenant_count, base_seed).unwrap();
            fleet.set_workers(workers);
            if explicit_off {
                fleet.set_sharing(SharingConfig::default()).unwrap();
            }
            for index in 0..tenant_count {
                let gap = gaps[index % gaps.len()];
                let n = (400.0 / gap) as usize;
                for k in 0..n {
                    fleet.ingest(index, k as f64 * gap).unwrap();
                }
            }
            let mut all = Vec::new();
            for round in 0..rounds {
                let now = 400.0 + 20.0 * round as f64;
                all.push(fleet.run_round_uniform(now, round).unwrap());
            }
            (all, fleet.aggregate_stats())
        };
        let baseline = run(1, false);
        for workers in [1usize, 3, 8] {
            let explicit = run(workers, true);
            prop_assert_eq!(&baseline.0, &explicit.0, "plans diverged at {} workers", workers);
            prop_assert_eq!(&baseline.1, &explicit.1, "stats diverged at {} workers", workers);
        }
    }

    /// With the full reuse stack enabled (`SharingConfig::on()` = shared
    /// sampling + decision dedup + plan cache), plans are still
    /// deterministic and worker-count invariant — cluster sampler seeds
    /// are derived from the cluster's *content*, leaders are picked in
    /// tenant-index order, and cache keys are pure functions of forecast
    /// content — though not necessarily equal to the sharing-off plans.
    /// Varied per-tenant gaps exercise the mixed case: some tenants
    /// cluster, the rest degrade to the private path as singletons. The
    /// compared stats include `plan_cache_hits`, so cache behaviour is
    /// pinned worker-invariant too.
    #[test]
    fn enabled_sharing_is_worker_count_invariant(
        tenant_count in 2usize..6,
        base_seed in 0u64..1_000,
        gaps in prop::collection::vec(3.0_f64..12.0, 1..4),
        rounds in 1usize..4,
    ) {
        let config = online_config(10.0);
        let run = |workers: usize| {
            let mut fleet = TenantFleet::new(&config, 0.0, tenant_count, base_seed).unwrap();
            fleet.set_workers(workers);
            fleet.set_sharing(SharingConfig::on()).unwrap();
            for index in 0..tenant_count {
                let gap = gaps[index % gaps.len()];
                let n = (400.0 / gap) as usize;
                for k in 0..n {
                    fleet.ingest(index, k as f64 * gap).unwrap();
                }
            }
            let mut all = Vec::new();
            for round in 0..rounds {
                let now = 400.0 + 20.0 * round as f64;
                all.push(fleet.run_round_uniform(now, round).unwrap());
            }
            (all, fleet.aggregate_stats())
        };
        let serial = run(1);
        prop_assert_eq!(&serial, &run(3));
        prop_assert_eq!(&serial, &run(8));
    }
}
